//! Hand-coded derivatives of bivariate-normal source appearances.
//!
//! The hot per-pixel kernel of Celeste evaluates, for each source, its
//! unit-flux appearance `G(pixel)` — a Gaussian mixture — together with
//! exact first and second derivatives with respect to the geometry
//! parameters: position offset `u` (2) and, for galaxies, the shape
//! block `(deV-logit, axis-logit, angle, ln-radius)` (4). The paper
//! hand-codes these ("we use our own hand-coded derivatives that
//! leverage custom index types to exploit Hessian sparsity", §V); the
//! AD crate verifies them in tests.
//!
//! Layout of the 6-slot geometry gradient/Hessian used throughout:
//! `[u0, u1, fd_logit, axis_logit, angle, ln_radius]`. Stars populate
//! only the first two slots.
//!
//! All pixel-independent quantities (inverse covariances, the Σ-chain
//! matrices, trace contractions) are precomputed once per Newton
//! iteration in [`PreparedStar`] / [`PreparedGalaxy`]; the per-pixel
//! work is a handful of 2-vector contractions per mixture component.
//!
//! ## Component culling and lane batching
//!
//! Preparation also derives, per component, a *screening radius* in
//! Mahalanobis units: a `qf_cut` such that whenever the pixel's
//! quadratic form `qf = δᵀΣ⁻¹δ` exceeds it, the component's
//! contribution to **every** output slot (value, gradient, Hessian) is
//! below the configured culling tolerance (see `cull_threshold` for
//! the bound). The per-pixel kernel then runs in passes over
//! struct-of-arrays lanes: a branch-free madd loop computes all
//! quadratic forms, survivors are gathered, `exp` is taken only for
//! survivors, and the derivative assembly streams compact per-component
//! blocks that carry just the fields the production kernel reads
//! (~60 doubles instead of the full ~140-double prepared component).
//! With tolerance 0 the cut degenerates to the hard `qf > 100` cutoff
//! and the kernel agrees with [`PreparedGalaxy::eval_reference`] to
//! 1e-12.

use crate::params::sigmoid;
use celeste_survey::galaxy::{dev_mixture, exp_mixture};
use celeste_survey::gmm::Cov2;
use celeste_survey::psf::Psf;

/// Number of geometry slots (2 position + 4 shape).
pub const GEO: usize = 6;

/// Value, gradient and Hessian of `G` at one pixel over the 6 geometry
/// slots (star: only slots 0–1 are nonzero).
#[derive(Debug, Clone, Copy)]
pub struct GeoEval {
    pub val: f64,
    pub grad: [f64; GEO],
    pub hess: [[f64; GEO]; GEO],
}

impl GeoEval {
    fn zero() -> GeoEval {
        GeoEval {
            val: 0.0,
            grad: [0.0; GEO],
            hess: [[0.0; GEO]; GEO],
        }
    }
}

/// Symmetric 2×2 matrix as (xx, xy, yy) with the contraction helpers
/// the lnN calculus needs.
#[derive(Debug, Clone, Copy, Default)]
struct Sym2 {
    xx: f64,
    xy: f64,
    yy: f64,
}

impl Sym2 {
    fn from_cov(c: &Cov2) -> Sym2 {
        Sym2 {
            xx: c.xx,
            xy: c.xy,
            yy: c.yy,
        }
    }

    fn scale(&self, s: f64) -> Sym2 {
        Sym2 {
            xx: self.xx * s,
            xy: self.xy * s,
            yy: self.yy * s,
        }
    }

    /// Quadratic form hᵀ A h.
    #[inline]
    fn quad(&self, h: [f64; 2]) -> f64 {
        self.xx * h[0] * h[0] + 2.0 * self.xy * h[0] * h[1] + self.yy * h[1] * h[1]
    }

    /// Matrix-vector product A h.
    #[inline]
    fn mv(&self, h: [f64; 2]) -> [f64; 2] {
        [
            self.xx * h[0] + self.xy * h[1],
            self.xy * h[0] + self.yy * h[1],
        ]
    }

    /// trace(A B) for symmetric A, B.
    #[inline]
    fn trace_prod(&self, b: &Sym2) -> f64 {
        self.xx * b.xx + 2.0 * self.xy * b.xy + self.yy * b.yy
    }

    /// A B A for symmetric A (self) and B: returns the symmetric result.
    fn sandwich(&self, b: &Sym2) -> Sym2 {
        // (A B) then (·) A; result is symmetric by construction.
        let ab = [
            [
                self.xx * b.xx + self.xy * b.xy,
                self.xx * b.xy + self.xy * b.yy,
            ],
            [
                self.xy * b.xx + self.yy * b.xy,
                self.xy * b.xy + self.yy * b.yy,
            ],
        ];
        Sym2 {
            xx: ab[0][0] * self.xx + ab[0][1] * self.xy,
            xy: ab[0][0] * self.xy + ab[0][1] * self.yy,
            yy: ab[1][0] * self.xy + ab[1][1] * self.yy,
        }
    }
}

/// Hard Mahalanobis cutoff shared by every evaluation path: beyond
/// `qf > QF_HARD_CUT` a component is `< e⁻⁵⁰` of its peak and is
/// dropped even at culling tolerance zero (the frozen reference kernel
/// applies the same cut).
pub const QF_HARD_CUT: f64 = 100.0;

/// Width of the fixed-size screening lanes: the per-pixel quadratic
/// forms are computed in chunks of this many components so the madd
/// loop runs branch-free over a compile-time-known width.
pub const LANE: usize = 8;

/// Fused-multiply-add strategy for the per-pixel kernels
/// ([`celeste_linalg::fused`]): the production kernel is instantiated
/// once with plain `a*b + c` (portable baseline) and once with
/// [`f64::mul_add`] inside an `avx2,fma` target-feature function. The
/// FMA form is at least as accurate as mul-then-add (one rounding
/// instead of two), so both instantiations agree with the frozen
/// reference kernel within the 1e-12 parity bar — but they are not
/// bit-identical to each other, so **every** evaluation path (value
/// and derivative alike) dispatches through the same process-global
/// [`fused::fma_enabled`] decision: a component whose quadratic form
/// straddles its screening cut must be culled in both paths or
/// neither, or the trust region's value and gradient become mutually
/// inconsistent at the cut.
use celeste_linalg::fused::{self, Madd as Fma, ScalarMadd};

#[cfg(target_arch = "x86_64")]
use celeste_linalg::fused::HwFma;

/// Batch width of the vectorized survivor path: exponentials and
/// derivative assembly run over this many surviving components in
/// SIMD lockstep (4 × f64 = one AVX2 register).
pub const EXP_BATCH: usize = 4;

/// Survivor count at which a mixed-survival 4-wide group routes to
/// the masked SoA batch (`ChunkRoute::Masked`) instead of scalar
/// streaming. The masked batch costs one `exp4` + one
/// `eval_block4` pass regardless of how many lanes are alive (dead
/// lanes run with `e = 0`, so every one of their contributions — all
/// of which multiply through `wn`/`dwn`/`d²wn·e` — vanishes exactly),
/// while scalar streaming costs one libm `exp` + one `eval_block`
/// per survivor. Measured on the benchmark container (`bvn_probe`):
/// the batch beats two scalar survivors and roughly ties one, so the
/// break-even is 2 of 4; a lone survivor stays scalar.
pub const MASKED_BREAK_EVEN: usize = 2;

/// The screening polynomial envelope `f(q) = (1+q)²·e^{−q/2}`:
/// monotonically decreasing for `q ≥ 3` (its maximizer). Its log,
/// `ln f(q) = 2·ln(1+q) − q/2`, is what the threshold solve uses;
/// this direct form certifies the solve in tests.
#[cfg_attr(not(test), allow(dead_code))]
fn cull_envelope(q: f64) -> f64 {
    (1.0 + q) * (1.0 + q) * (-0.5 * q).exp()
}

/// Smallest `q` at which [`cull_envelope`] is decreasing.
const QF_CUT_FLOOR: f64 = 3.0;

/// Solve for the per-component screening radius: the smallest
/// `qf_cut ∈ [3, QF_HARD_CUT]` such that for every pixel with
/// `qf > qf_cut`, the component's contribution to each output slot is
/// at most `tol`.
///
/// The certified bound: every slot of the per-component (value,
/// gradient, Hessian) contribution is at most
///
/// ```text
/// amp · (1+qf)² · e^{−qf/2},   amp = wmax · norm · 2(1+cmax)²
/// ```
///
/// where `wmax = max(|w|, |dw|, |d²w|)` and `cmax` majorizes the
/// pixel-independent contraction norms (‖JᵀΣ⁻¹‖/√λ_min for the
/// position gradient, ½‖dΣ‖·λ_max + |tr| for shape gradients, and the
/// corresponding Hessian-block norms), using `‖δ‖ ≤ √(qf/λ_min)` and
/// `‖Σ⁻¹δ‖² ≤ λ_max·qf`. Every kernel slot is a sum of at most two
/// products of factors individually bounded by `(1+cmax)(1+qf)` —
/// hence the leading 2. Since the envelope decreases beyond its
/// maximizer at `qf = 3`, holding the bound at `qf_cut` holds it for
/// the whole culled tail, so an evaluation at tolerance `tol` differs
/// from the zero-tolerance evaluation by at most `tol` per culled
/// component — `comps · tol` in total — in every output slot.
fn cull_threshold(tol: f64, wmax: f64, norm: f64, cmax: f64) -> f64 {
    if tol <= 0.0 {
        return QF_HARD_CUT;
    }
    let amp = wmax * norm * 2.0 * (1.0 + cmax) * (1.0 + cmax);
    if amp <= 0.0 {
        // The component contributes nothing anywhere.
        return QF_CUT_FLOOR;
    }
    // Solve ln f(q) = −ln(amp/tol), i.e. q/2 − 2·ln(1+q) = L, entirely
    // in log space (preparation runs once per component per Newton
    // iteration; a transcendental-heavy bisection here was measurable).
    let l = (amp / tol).ln();
    if l <= 0.5 * QF_CUT_FLOOR - 2.0 * (1.0 + QF_CUT_FLOOR).ln() {
        return QF_CUT_FLOOR;
    }
    if l >= 0.5 * QF_HARD_CUT - 2.0 * (1.0 + QF_HARD_CUT).ln() {
        return QF_HARD_CUT;
    }
    // Fixed point q ← 2L + 4·ln(1+q): a contraction (derivative
    // 4/(1+q) < 1 beyond the floor) converging monotonically up to the
    // root from q₀ = 2L ≤ q*.
    let mut q = (2.0 * l).clamp(QF_CUT_FLOOR, QF_HARD_CUT);
    for _ in 0..4 {
        q = (2.0 * l + 4.0 * (1.0 + q).ln()).min(QF_HARD_CUT);
    }
    // The iterate approaches from below (f(q) ≥ tol/amp side); walk
    // onto the certified side, verified in log space. The envelope is
    // monotone here and the walk is capped at the hard cut, so this
    // terminates; near small roots (amp ≲ tol) the fixed point
    // converges slowly and several steps may be needed.
    while 2.0 * (1.0 + q).ln() - 0.5 * q > -l && q < QF_HARD_CUT {
        q = (q + 0.05).min(QF_HARD_CUT);
    }
    q
}

fn frob_sym(s: &Sym2) -> f64 {
    (s.xx * s.xx + 2.0 * s.xy * s.xy + s.yy * s.yy).sqrt()
}

fn frob_2x2(a: &[[f64; 2]; 2]) -> f64 {
    (a[0][0] * a[0][0] + a[0][1] * a[0][1] + a[1][0] * a[1][0] + a[1][1] * a[1][1]).sqrt()
}

/// One prepared mixture component: everything pixel-independent.
#[derive(Debug, Clone)]
struct PreparedComp {
    /// Base weight (PSF weight × profile weight, before the deV/exp
    /// mixing derivative bookkeeping).
    weight: f64,
    /// d weight / d fd_logit and second derivative (zero for stars).
    dw_fd: f64,
    d2w_fd: f64,
    /// Inverse covariance M = Σ⁻¹ (pixel frame).
    m: Sym2,
    /// Normalization weight/(2π √det Σ) … note: *without* the component
    /// weight; `norm` is 1/(2π √det).
    norm: f64,
    /// −Jᵀ M J : the constant ∂²lnN/∂u² block (row-major 2×2).
    huu: [[f64; 2]; 2],
    /// Jᵀ M (for gu = Jᵀ h = (Jᵀ M) δ and cross terms).
    jt_m: [[f64; 2]; 2],
    /// dΣpix/ds for s ∈ {axis, angle, ln_radius} (indices 0,1,2).
    dsig: [Sym2; 3],
    /// ½ tr(M dΣ/ds) per s.
    tr_mds: [f64; 3],
    /// Per (s, s′): G = dΣ_s M dΣ_s′ (for −hᵀ G h), precomputed.
    cross_g: [[Sym2; 3]; 3],
    /// Per (s, s′): ½ tr(M dΣ_s′ M dΣ_s).
    cross_tr: [[f64; 3]; 3],
    /// Second Σ-derivatives d²Σpix/ds ds′ and their ½tr(M ·) parts.
    d2sig: [[Sym2; 3]; 3],
    tr_md2s: [[f64; 3]; 3],
    /// Per s: Jᵀ M dΣ_s (for ∂²lnN/∂u∂s = −(Jᵀ M dΣ_s) h).
    ku: [[[f64; 2]; 2]; 3],
    /// Precombined quadratic-form matrix for the shape-shape lnN
    /// Hessian: `½ d²Σ_{ss′} − dΣ_s M dΣ_s′` — one quad form per
    /// (s, s′) at eval time instead of two.
    hq: [[Sym2; 3]; 3],
    /// Matching constant part: `cross_tr − tr_md2s` per (s, s′).
    hc: [[f64; 3]; 3],
    /// Screening radius in Mahalanobis units: pixels with
    /// `qf > qf_cut` skip this component entirely ([`cull_threshold`]).
    qf_cut: f64,
}

fn invert(cov: &Cov2) -> (Sym2, f64) {
    let det = cov.det();
    assert!(det > 0.0, "degenerate covariance {cov:?}");
    let inv = Sym2 {
        xx: cov.yy / det,
        xy: -cov.xy / det,
        yy: cov.xx / det,
    };
    (inv, det)
}

fn mat2_mul(a: &[[f64; 2]; 2], b: &[[f64; 2]; 2]) -> [[f64; 2]; 2] {
    [
        [
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
        ],
        [
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        ],
    ]
}

fn sym_as_mat(s: &Sym2) -> [[f64; 2]; 2] {
    [[s.xx, s.xy], [s.xy, s.yy]]
}

/// Congruence J A Jᵀ of a symmetric sky-frame matrix into pixel frame.
fn congruence(a: &Sym2, j: &[[f64; 2]; 2]) -> Sym2 {
    let c = Cov2 {
        xx: a.xx,
        xy: a.xy,
        yy: a.yy,
    }
    .congruence(j);
    Sym2::from_cov(&c)
}

#[allow(clippy::too_many_arguments)] // internal constructor mirroring the math
fn prepare_comp(
    weight: f64,
    dw_fd: f64,
    d2w_fd: f64,
    cov: Cov2,
    jac: &[[f64; 2]; 2],
    dsig: [Sym2; 3],
    d2sig: [[Sym2; 3]; 3],
    cull_tol: f64,
) -> PreparedComp {
    let (m, det) = invert(&cov);
    let norm = 1.0 / (std::f64::consts::TAU * det.sqrt());
    let mm = sym_as_mat(&m);
    let jt = [[jac[0][0], jac[1][0]], [jac[0][1], jac[1][1]]];
    let jt_m = mat2_mul(&jt, &mm);
    let jt_m_j = mat2_mul(&jt_m, jac);
    let huu = [
        [-jt_m_j[0][0], -jt_m_j[0][1]],
        [-jt_m_j[1][0], -jt_m_j[1][1]],
    ];

    let mut tr_mds = [0.0; 3];
    let mut cross_g = [[Sym2::default(); 3]; 3];
    let mut cross_tr = [[0.0; 3]; 3];
    let mut tr_md2s = [[0.0; 3]; 3];
    let mut ku = [[[0.0; 2]; 2]; 3];
    for s in 0..3 {
        tr_mds[s] = 0.5 * m.trace_prod(&dsig[s]);
        let m_ds = mat2_mul(&mm, &sym_as_mat(&dsig[s]));
        ku[s] = mat2_mul(&jt, &m_ds);
        for s2 in 0..3 {
            // dΣ_s M dΣ_s2 (symmetric in the quad-form sense).
            let ds_m = mat2_mul(&sym_as_mat(&dsig[s]), &mm);
            let g = mat2_mul(&ds_m, &sym_as_mat(&dsig[s2]));
            // Symmetrize (exact up to rounding for the quad form).
            cross_g[s][s2] = Sym2 {
                xx: g[0][0],
                xy: 0.5 * (g[0][1] + g[1][0]),
                yy: g[1][1],
            };
            cross_tr[s][s2] = 0.5 * m.sandwich(&dsig[s2]).trace_prod(&dsig[s]);
            tr_md2s[s][s2] = 0.5 * m.trace_prod(&d2sig[s][s2]);
        }
    }
    let mut hq = [[Sym2::default(); 3]; 3];
    let mut hc = [[0.0; 3]; 3];
    for s in 0..3 {
        for s2 in 0..3 {
            hq[s][s2] = Sym2 {
                xx: 0.5 * d2sig[s][s2].xx - cross_g[s][s2].xx,
                xy: 0.5 * d2sig[s][s2].xy - cross_g[s][s2].xy,
                yy: 0.5 * d2sig[s][s2].yy - cross_g[s][s2].yy,
            };
            hc[s][s2] = cross_tr[s][s2] - tr_md2s[s][s2];
        }
    }
    // Screening radius: majorize every pixel-dependent contraction
    // (see `cull_threshold` for the certified bound).
    let qf_cut = if cull_tol <= 0.0 {
        QF_HARD_CUT
    } else {
        let tr = m.xx + m.yy;
        let disc = (0.25 * tr * tr - (m.xx * m.yy - m.xy * m.xy))
            .max(0.0)
            .sqrt();
        let lam_max = (0.5 * tr + disc).max(f64::MIN_POSITIVE);
        let lam_min = ((m.xx * m.yy - m.xy * m.xy) / lam_max).max(f64::MIN_POSITIVE);
        let mut cmax = frob_2x2(&jt_m) / lam_min.sqrt();
        cmax = cmax.max(frob_2x2(&huu));
        for s in 0..3 {
            cmax = cmax.max(0.5 * frob_sym(&dsig[s]) * lam_max + tr_mds[s].abs());
            cmax = cmax.max(frob_2x2(&ku[s]) * lam_max.sqrt());
            for s2 in 0..3 {
                cmax = cmax.max(frob_sym(&hq[s][s2]) * lam_max + hc[s][s2].abs());
            }
        }
        let wmax = weight.abs().max(dw_fd.abs()).max(d2w_fd.abs());
        cull_threshold(cull_tol, wmax, norm, cmax)
    };
    PreparedComp {
        weight,
        dw_fd,
        d2w_fd,
        m,
        norm,
        huu,
        jt_m,
        dsig,
        tr_mds,
        cross_g,
        cross_tr,
        d2sig,
        tr_md2s,
        ku,
        hq,
        hc,
        qf_cut,
    }
}

/// The compact per-component block the production kernel streams:
/// only the fields the derivative assembly reads, position-block
/// fields first so the star path (no shape) touches the fewest cache
/// lines. Shape-pair tables (`hq`, `hc`) store the lower triangle of
/// (s, s′) at index `s(s+1)/2 + s′`.
#[derive(Debug, Clone, Copy, Default)]
struct EvalBlock {
    /// Σ⁻¹ as (xx, xy, yy).
    m: [f64; 3],
    /// weight × norm (the exp coefficient).
    wn: f64,
    /// Jᵀ Σ⁻¹, row-major.
    jt_m: [f64; 4],
    /// −JᵀΣ⁻¹J lower triangle (00, 10, 11).
    huu: [f64; 3],
    /// dw_fd × norm and d²w_fd × norm (mixing-weight slot).
    dwn: f64,
    d2wn: f64,
    tr_mds: [f64; 3],
    /// ½·dΣ_s prefolded as (½xx, xy, ½yy) per shape slot, so the gs
    /// quadratic form over (h₀², h₀h₁, h₁²) needs no scaling (the ½
    /// and the cross-term 2 are powers of two: folding is exact).
    dsig: [[f64; 3]; 3],
    /// Jᵀ Σ⁻¹ dΣ_s, row-major, per shape slot.
    ku: [[f64; 4]; 3],
    /// hq prefolded as (xx, 2xy, yy) — same exact power-of-two fold.
    hq: [[f64; 3]; 6],
    hc: [f64; 6],
}

impl EvalBlock {
    fn from_comp(c: &PreparedComp) -> EvalBlock {
        let mut b = EvalBlock {
            m: [c.m.xx, c.m.xy, c.m.yy],
            wn: c.weight * c.norm,
            jt_m: [c.jt_m[0][0], c.jt_m[0][1], c.jt_m[1][0], c.jt_m[1][1]],
            huu: [c.huu[0][0], c.huu[1][0], c.huu[1][1]],
            dwn: c.dw_fd * c.norm,
            d2wn: c.d2w_fd * c.norm,
            tr_mds: c.tr_mds,
            ..EvalBlock::default()
        };
        for s in 0..3 {
            b.dsig[s] = [0.5 * c.dsig[s].xx, c.dsig[s].xy, 0.5 * c.dsig[s].yy];
            b.ku[s] = [c.ku[s][0][0], c.ku[s][0][1], c.ku[s][1][0], c.ku[s][1][1]];
            for s2 in 0..=s {
                let p = s * (s + 1) / 2 + s2;
                b.hq[p] = [c.hq[s][s2].xx, 2.0 * c.hq[s][s2].xy, c.hq[s][s2].yy];
                b.hc[p] = c.hc[s][s2];
            }
        }
        b
    }

    /// Scatter this block's 61 fields into the field-major transpose
    /// (component `i` of `n`): field `f`'s lane array occupies
    /// `soa[f·n .. (f+1)·n]`, so a batch of consecutive components
    /// is one contiguous vector load per field in the SIMD assembly.
    fn scatter_soa(&self, soa: &mut [f64], n: usize, i: usize) {
        for k in 0..3 {
            soa[(F_M + k) * n + i] = self.m[k];
            soa[(F_HUU + k) * n + i] = self.huu[k];
            soa[(F_TRMDS + k) * n + i] = self.tr_mds[k];
        }
        soa[F_WN * n + i] = self.wn;
        soa[F_DWN * n + i] = self.dwn;
        soa[F_D2WN * n + i] = self.d2wn;
        for k in 0..4 {
            soa[(F_JTM + k) * n + i] = self.jt_m[k];
        }
        for s in 0..3 {
            for k in 0..3 {
                soa[(F_DSIG + 3 * s + k) * n + i] = self.dsig[s][k];
            }
            for k in 0..4 {
                soa[(F_KU + 4 * s + k) * n + i] = self.ku[s][k];
            }
        }
        for p in 0..6 {
            for k in 0..3 {
                soa[(F_HQ + 3 * p + k) * n + i] = self.hq[p][k];
            }
            soa[(F_HC + p) * n + i] = self.hc[p];
        }
    }
}

/// Field indices of the [`EvalBlock`] transpose (`Lanes::soa`), in
/// [`EvalBlock`] declaration order. Multi-slot fields are flattened
/// in their natural (row-major / packed) order.
const F_M: usize = 0; // 3: Σ⁻¹ (xx, xy, yy)
const F_WN: usize = 3; // weight × norm
const F_JTM: usize = 4; // 4: Jᵀ Σ⁻¹ row-major
const F_HUU: usize = 8; // 3: −JᵀΣ⁻¹J lower triangle
const F_DWN: usize = 11;
const F_D2WN: usize = 12;
const F_TRMDS: usize = 13; // 3
const F_DSIG: usize = 16; // 3 shape slots × 3 (prefolded)
const F_KU: usize = 25; // 3 shape slots × 4
const F_HQ: usize = 37; // 6 pairs × 3 (prefolded)
const F_HC: usize = 55; // 6
/// Total lane-array count of the transpose.
const N_FIELDS: usize = 61;

/// Struct-of-arrays screening lanes plus the per-component eval
/// blocks. The SoA part (`mxx/mxy/myy/qf_cut/wn`) feeds the
/// branch-free quadratic-form and value loops; `blocks` is streamed
/// for components that survive the cull in partially-culled chunks,
/// while `soa` — the field-major transpose of `blocks` — feeds the
/// batched assembly of fully-surviving chunks with contiguous vector
/// loads. Buffers are reused across re-preparations (the
/// zero-allocation hot loop).
#[derive(Debug, Clone, Default)]
struct Lanes {
    mxx: Vec<f64>,
    mxy: Vec<f64>,
    myy: Vec<f64>,
    qf_cut: Vec<f64>,
    wn: Vec<f64>,
    blocks: Vec<EvalBlock>,
    /// Field-major transpose of `blocks`: `N_FIELDS` lane arrays of
    /// stride `len()` each (see the `F_*` indices). Only batch routes
    /// read it, and those fire only for groups that lie entirely
    /// within `len()` ([`classify_chunk`]), so no padding is needed.
    soa: Vec<f64>,
}

impl Lanes {
    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn rebuild(&mut self, comps: &[PreparedComp]) {
        self.mxx.clear();
        self.mxy.clear();
        self.myy.clear();
        self.qf_cut.clear();
        self.wn.clear();
        self.blocks.clear();
        for c in comps {
            self.mxx.push(c.m.xx);
            self.mxy.push(c.m.xy);
            self.myy.push(c.m.yy);
            self.qf_cut.push(c.qf_cut);
            self.wn.push(c.weight * c.norm);
            self.blocks.push(EvalBlock::from_comp(c));
        }
        let n = self.blocks.len();
        self.soa.clear();
        self.soa.resize(N_FIELDS * n, 0.0);
        for (i, b) in self.blocks.iter().enumerate() {
            b.scatter_soa(&mut self.soa, n, i);
        }
    }
}

/// Prepared star appearance: PSF mixture with position derivatives.
#[derive(Debug, Clone)]
pub struct PreparedStar {
    comps: Vec<PreparedComp>,
    lanes: Lanes,
    /// Source center in pixel coordinates (anchor + J·u already applied).
    center: [f64; 2],
}

/// Prepared galaxy appearance: (profile ⊛ PSF) mixture with position,
/// mixing, and shape derivatives.
#[derive(Debug, Clone)]
pub struct PreparedGalaxy {
    comps: Vec<PreparedComp>,
    lanes: Lanes,
    center: [f64; 2],
}

/// Shape inputs in unconstrained space.
#[derive(Debug, Clone, Copy)]
pub struct GalaxyGeo {
    pub fd_logit: f64,
    pub axis_logit: f64,
    pub angle: f64,
    pub ln_radius: f64,
}

/// Sky-frame profile covariance for unit-variance `v` plus its first
/// and second derivatives with respect to (axis_logit, angle,
/// ln_radius). Returns (Σ, dΣ[3], d²Σ[3][3]) in arcsec².
fn shape_cov_derivs(v: f64, geo: &GalaxyGeo) -> (Sym2, [Sym2; 3], [[Sym2; 3]; 3]) {
    let q = sigmoid(geo.axis_logit).clamp(1e-4, 1.0 - 1e-9);
    let (sin, cos) = geo.angle.sin_cos();
    let rho2 = (2.0 * geo.ln_radius).exp();
    let major = v * rho2;
    let minor = major * q * q;

    let c2 = cos * cos;
    let s2 = sin * sin;
    let sc = sin * cos;
    // Σ in terms of (major M, minor m): xx = M c² + m s², xy = (M−m)sc,
    // yy = M s² + m c².
    let sig = Sym2 {
        xx: major * c2 + minor * s2,
        xy: (major - minor) * sc,
        yy: major * s2 + minor * c2,
    };
    // Derivatives of `minor` wrt axis_logit: dq/dql = q(1−q).
    let dq = q * (1.0 - q);
    let dminor = 2.0 * minor * (1.0 - q); // = major·2q·dq
    let d2minor = 2.0 * ((dminor) * (1.0 - q) + minor * (-dq));
    // s = 0: axis_logit — only `minor` moves.
    let d_axis = Sym2 {
        xx: dminor * s2,
        xy: -dminor * sc,
        yy: dminor * c2,
    };
    let d2_axis = Sym2 {
        xx: d2minor * s2,
        xy: -d2minor * sc,
        yy: d2minor * c2,
    };
    // s = 1: angle.
    let dxy_dth = (major - minor) * (c2 - s2);
    let d_angle = Sym2 {
        xx: -2.0 * sig.xy,
        xy: dxy_dth,
        yy: 2.0 * sig.xy,
    };
    let d2_angle = Sym2 {
        xx: -2.0 * dxy_dth,
        xy: -4.0 * sig.xy,
        yy: 2.0 * dxy_dth,
    };
    // s = 2: ln_radius — everything scales as e^{2lr}.
    let d_lr = sig.scale(2.0);
    let d2_lr = sig.scale(4.0);
    // Crosses.
    let d_axis_angle = Sym2 {
        // ∂(∂Σ/∂θ)/∂ql: xy = (M−m)sc → ∂xy/∂ql = −dminor·sc
        xx: 2.0 * dminor * sc,
        xy: -dminor * (c2 - s2),
        yy: -2.0 * dminor * sc,
    };
    let d_axis_lr = d_axis.scale(2.0);
    let d_angle_lr = d_angle.scale(2.0);

    let d1 = [d_axis, d_angle, d_lr];
    let d2 = [
        [d2_axis, d_axis_angle, d_axis_lr],
        [d_axis_angle, d2_angle, d_angle_lr],
        [d_axis_lr, d_angle_lr, d2_lr],
    ];
    (sig, d1, d2)
}

impl Default for PreparedStar {
    /// An empty appearance; fill with [`PreparedStar::prepare`].
    fn default() -> Self {
        PreparedStar {
            comps: Vec::new(),
            lanes: Lanes::default(),
            center: [0.0; 2],
        }
    }
}

impl PreparedStar {
    /// Prepare a star appearance at culling tolerance zero: `center0`
    /// is the anchor position in pixels, `u_arcsec` the current
    /// offset, `jac` maps arcsec → px.
    pub fn new(psf: &Psf, center0: [f64; 2], u_arcsec: [f64; 2], jac: &[[f64; 2]; 2]) -> Self {
        let mut out = PreparedStar::default();
        out.prepare(psf, center0, u_arcsec, jac, 0.0);
        out
    }

    /// Refill in place, reusing the component buffers' allocations
    /// (the per-evaluation path of the zero-allocation hot loop).
    /// `cull_tol` bounds the per-component, per-slot error of skipping
    /// distant components; 0 disables culling beyond the hard cutoff.
    pub fn prepare(
        &mut self,
        psf: &Psf,
        center0: [f64; 2],
        u_arcsec: [f64; 2],
        jac: &[[f64; 2]; 2],
        cull_tol: f64,
    ) {
        self.center = apply_offset(center0, u_arcsec, jac);
        self.comps.clear();
        self.comps.extend(psf.components.iter().map(|c| {
            prepare_comp(
                c.weight,
                0.0,
                0.0,
                Cov2::isotropic(c.sigma_px * c.sigma_px),
                jac,
                [Sym2::default(); 3],
                [[Sym2::default(); 3]; 3],
                cull_tol,
            )
        }));
        self.lanes.rebuild(&self.comps);
    }

    /// Number of prepared mixture components (sizes the advertised
    /// culling error bound `comps × tol`).
    pub fn n_comps(&self) -> usize {
        self.comps.len()
    }

    /// Evaluate value/gradient/Hessian at a pixel center.
    pub fn eval(&self, px: f64, py: f64) -> GeoEval {
        eval_lanes(&self.lanes, self.center, px, py, false)
    }

    /// The frozen pre-refactor kernel (parity/benchmark reference).
    pub fn eval_reference(&self, px: f64, py: f64) -> GeoEval {
        eval_prepared_reference(&self.comps, self.center, px, py, false)
    }

    /// Value-only evaluation (trust-region trial points): no derivative
    /// assembly, roughly 4× cheaper per pixel.
    pub fn eval_value(&self, px: f64, py: f64) -> f64 {
        eval_value_lanes(&self.lanes, self.center, px, py)
    }

    /// The portable (non-SIMD) kernel instantiation, bypassing the
    /// runtime dispatch: parity hook for the scalar-vs-SIMD property
    /// tests. Not a production entry point.
    #[doc(hidden)]
    pub fn eval_portable(&self, px: f64, py: f64) -> GeoEval {
        eval_lanes_impl::<ScalarMadd>(&self.lanes, self.center, px, py, false)
    }

    /// Portable value-only instantiation (see [`Self::eval_portable`]).
    #[doc(hidden)]
    pub fn eval_value_portable(&self, px: f64, py: f64) -> f64 {
        eval_value_lanes_impl::<ScalarMadd>(&self.lanes, self.center, px, py)
    }

    /// Chunk-route histogram the dispatched derivative kernel takes
    /// at this pixel (diagnostics only; see [`RouteCounts`]).
    pub fn route_counts(&self, px: f64, py: f64) -> RouteCounts {
        route_counts_lanes(&self.lanes, self.center, px, py)
    }
}

impl Default for PreparedGalaxy {
    /// An empty appearance; fill with [`PreparedGalaxy::prepare`].
    fn default() -> Self {
        PreparedGalaxy {
            comps: Vec::new(),
            lanes: Lanes::default(),
            center: [0.0; 2],
        }
    }
}

impl PreparedGalaxy {
    /// Prepare a galaxy appearance for the current shape parameters at
    /// culling tolerance zero.
    pub fn new(
        psf: &Psf,
        geo: &GalaxyGeo,
        center0: [f64; 2],
        u_arcsec: [f64; 2],
        jac: &[[f64; 2]; 2],
    ) -> Self {
        let mut out = PreparedGalaxy::default();
        out.prepare(psf, geo, center0, u_arcsec, jac, 0.0);
        out
    }

    /// Refill in place, reusing the component buffers' allocations
    /// (the per-evaluation path of the zero-allocation hot loop).
    /// `cull_tol` bounds the per-component, per-slot error of skipping
    /// distant components; 0 disables culling beyond the hard cutoff.
    pub fn prepare(
        &mut self,
        psf: &Psf,
        geo: &GalaxyGeo,
        center0: [f64; 2],
        u_arcsec: [f64; 2],
        jac: &[[f64; 2]; 2],
        cull_tol: f64,
    ) {
        let center = apply_offset(center0, u_arcsec, jac);
        let fd = sigmoid(geo.fd_logit);
        let dfd = fd * (1.0 - fd);
        let d2fd = dfd * (1.0 - 2.0 * fd);
        let dev = dev_mixture();
        let exp = exp_mixture();
        let comps = &mut self.comps;
        comps.clear();
        comps.reserve((dev.vars.len() + exp.vars.len()) * psf.components.len());
        // (profile weight, ∂/∂fd sign, unit variance)
        let profiles = dev
            .weights
            .iter()
            .zip(&dev.vars)
            .map(|(&w, &v)| (w, true, v))
            .chain(
                exp.weights
                    .iter()
                    .zip(&exp.vars)
                    .map(|(&w, &v)| (w, false, v)),
            );
        for (wprof, is_dev, v) in profiles {
            let (sig_sky, d1_sky, d2_sky) = shape_cov_derivs(v, geo);
            let sig_pix = congruence(&sig_sky, jac);
            let d1_pix = [
                congruence(&d1_sky[0], jac),
                congruence(&d1_sky[1], jac),
                congruence(&d1_sky[2], jac),
            ];
            let mut d2_pix = [[Sym2::default(); 3]; 3];
            for s in 0..3 {
                for s2 in 0..3 {
                    d2_pix[s][s2] = congruence(&d2_sky[s][s2], jac);
                }
            }
            let (mix_w, mix_dw, mix_d2w) = if is_dev {
                (fd * wprof, dfd * wprof, d2fd * wprof)
            } else {
                ((1.0 - fd) * wprof, -dfd * wprof, -d2fd * wprof)
            };
            for pc in &psf.components {
                let cov = Cov2 {
                    xx: sig_pix.xx + pc.sigma_px * pc.sigma_px,
                    xy: sig_pix.xy,
                    yy: sig_pix.yy + pc.sigma_px * pc.sigma_px,
                };
                comps.push(prepare_comp(
                    mix_w * pc.weight,
                    mix_dw * pc.weight,
                    mix_d2w * pc.weight,
                    cov,
                    jac,
                    d1_pix,
                    d2_pix,
                    cull_tol,
                ));
            }
        }
        self.lanes.rebuild(&self.comps);
        self.center = center;
    }

    /// Number of prepared mixture components (sizes the advertised
    /// culling error bound `comps × tol`).
    pub fn n_comps(&self) -> usize {
        self.comps.len()
    }

    /// Evaluate value/gradient/Hessian at a pixel center.
    pub fn eval(&self, px: f64, py: f64) -> GeoEval {
        eval_lanes(&self.lanes, self.center, px, py, true)
    }

    /// The frozen pre-refactor kernel (parity/benchmark reference).
    pub fn eval_reference(&self, px: f64, py: f64) -> GeoEval {
        eval_prepared_reference(&self.comps, self.center, px, py, true)
    }

    /// Value-only evaluation (trust-region trial points).
    pub fn eval_value(&self, px: f64, py: f64) -> f64 {
        eval_value_lanes(&self.lanes, self.center, px, py)
    }

    /// The portable (non-SIMD) kernel instantiation, bypassing the
    /// runtime dispatch: parity hook for the scalar-vs-SIMD property
    /// tests. Not a production entry point.
    #[doc(hidden)]
    pub fn eval_portable(&self, px: f64, py: f64) -> GeoEval {
        eval_lanes_impl::<ScalarMadd>(&self.lanes, self.center, px, py, true)
    }

    /// Portable value-only instantiation (see [`Self::eval_portable`]).
    #[doc(hidden)]
    pub fn eval_value_portable(&self, px: f64, py: f64) -> f64 {
        eval_value_lanes_impl::<ScalarMadd>(&self.lanes, self.center, px, py)
    }

    /// Chunk-route histogram the dispatched derivative kernel takes
    /// at this pixel (diagnostics only; see [`RouteCounts`]).
    pub fn route_counts(&self, px: f64, py: f64) -> RouteCounts {
        route_counts_lanes(&self.lanes, self.center, px, py)
    }
}

fn apply_offset(center0: [f64; 2], u: [f64; 2], jac: &[[f64; 2]; 2]) -> [f64; 2] {
    [
        center0[0] + jac[0][0] * u[0] + jac[0][1] * u[1],
        center0[1] + jac[1][0] * u[0] + jac[1][1] * u[1],
    ]
}

/// Screening pass shared by the value and derivative kernels: compute
/// the Mahalanobis quadratic forms for one fixed-width chunk of SoA
/// lanes. The loop body is branch-free madds over a compile-time
/// width, so it autovectorizes; lanes past `w` are left at +∞ and can
/// never pass a screening cut.
#[inline(always)]
fn chunk_qf<F: Fma>(
    lanes: &Lanes,
    base: usize,
    w: usize,
    dxx: f64,
    dxy2: f64,
    dyy: f64,
) -> [f64; LANE] {
    let mut qf = [f64::INFINITY; LANE];
    let mxx = &lanes.mxx[base..base + w];
    let mxy = &lanes.mxy[base..base + w];
    let myy = &lanes.myy[base..base + w];
    for j in 0..w {
        qf[j] = F::madd(mxx[j], dxx, F::madd(mxy[j], dxy2, myy[j] * dyy));
    }
    qf
}

/// Value-only per-pixel kernel: Σ w·N with no derivative assembly.
/// Touches only the SoA lanes (never the derivative blocks).
///
/// Dispatches through the same process-global [`fused::fma_enabled`]
/// decision as the derivative kernel, so the screening quadratic
/// forms round identically in both paths and a component at its
/// screening cut is culled in both or neither. (An earlier revision
/// pinned this path to the portable instantiation while the
/// derivative path dispatched hardware FMA; near `qf_cut` the two
/// could then disagree on culling, making trust-region values and
/// gradients mutually inconsistent.)
fn eval_value_lanes(lanes: &Lanes, center: [f64; 2], px: f64, py: f64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if fused::fma_enabled() {
        // SAFETY: fma_enabled() verified avx2+fma at runtime.
        return unsafe { eval_value_lanes_fma(lanes, center, px, py) };
    }
    eval_value_lanes_impl::<ScalarMadd>(lanes, center, px, py)
}

/// Routing decision for one screening chunk — the cull comparison
/// and route selection shared *verbatim* by the value and derivative
/// SIMD kernels, so the two can never again diverge on a culling
/// decision (the dispatch-unification invariant in code form):
///
/// * [`ChunkRoute::Skip`] — no survivor; the chunk costs just its
///   quadratic forms (the far-wing common case);
/// * [`ChunkRoute::BatchFull`] / [`ChunkRoute::BatchHalf`] — every
///   lane survives a full (8) or final half (4) chunk: unmasked
///   [`exp4`] batches with fixed straight-line indices (the
///   source-core common case);
/// * [`ChunkRoute::Masked`] — mixed survival where at least one
///   aligned 4-wide group has ≥ [`MASKED_BREAK_EVEN`] survivors
///   (popcount per group): qualifying groups run the dense SoA batch
///   with dead lanes masked to `e = 0`, the rest stream scalar (the
///   boundary-pixel recovery route);
/// * [`ChunkRoute::Scalar`] — mixed survival too sparse for masking:
///   per-survivor scalar streaming.
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))] // payloads read by the SIMD kernels
enum ChunkRoute {
    Skip,
    BatchFull,
    BatchHalf,
    Masked([bool; LANE]),
    Scalar([bool; LANE]),
}

#[inline(always)]
fn classify_chunk(qf: &[f64; LANE], cut: &[f64], w: usize) -> ChunkRoute {
    let mut keep = [false; LANE];
    let (mut any, mut all) = (false, true);
    for j in 0..w {
        keep[j] = qf[j] <= cut[j];
        any |= keep[j];
        all &= keep[j];
    }
    if !any {
        return ChunkRoute::Skip;
    }
    if all && w == LANE {
        return ChunkRoute::BatchFull;
    }
    if all && w == EXP_BATCH {
        return ChunkRoute::BatchHalf;
    }
    // Mixed survival: masked-batchable iff some aligned 4-wide group
    // that lies entirely within the lanes meets the break-even.
    let mut off = 0;
    while off + EXP_BATCH <= w {
        let alive = keep[off..off + EXP_BATCH].iter().filter(|&&k| k).count();
        if alive >= MASKED_BREAK_EVEN {
            return ChunkRoute::Masked(keep);
        }
        off += EXP_BATCH;
    }
    ChunkRoute::Scalar(keep)
}

/// Masked 4-wide exponentials for one mixed-survival group: dead
/// lanes get input 0 (their quadratic form can sit anywhere past the
/// cut — far outside [`exp4`]'s domain, where the exponent-field
/// `2^k` scale would produce garbage), then their `e` is forced to
/// exactly 0.0 so every downstream contribution vanishes.
#[inline(always)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))] // only the SIMD paths batch
fn exp4_masked<F: Fma>(qf: &[f64], keep: &[bool]) -> [f64; EXP_BATCH] {
    let mut x = [0.0; EXP_BATCH];
    for l in 0..EXP_BATCH {
        if keep[l] {
            x[l] = -0.5 * qf[l];
        }
    }
    let mut e = exp4::<F>(x);
    for l in 0..EXP_BATCH {
        if !keep[l] {
            e[l] = 0.0;
        }
    }
    e
}

/// Survivors in one aligned 4-wide group of a mixed chunk.
#[inline(always)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn group_alive(keep: &[bool]) -> usize {
    keep[..EXP_BATCH].iter().filter(|&&k| k).count()
}

/// Per-route chunk counts for one pixel evaluation — the screening
/// router's diagnostic face, used by `bvn_probe` and the
/// `chunk_routes` block of `BENCH_hotpath.json`. Counting is kept off
/// the hot path (the production kernels carry no counters); instead
/// this replays the routing the dispatched *derivative* kernel takes
/// — the same `classify_chunk`, the same small-mixture early-out,
/// the same process-global FMA decision — so a routing regression
/// shows up here exactly as the kernel would experience it. (The
/// value kernel differs only in its early-out width: it batches
/// mixtures down to one exp-batch.)
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouteCounts {
    /// Chunks with no survivor (cost: quadratic forms only).
    pub skip: usize,
    /// Fully-surviving chunks on the unmasked batch routes.
    pub batch: usize,
    /// Mixed-survival chunks on the masked SoA route.
    pub masked: usize,
    /// Chunks streamed per-survivor: mixed survival below the
    /// [`MASKED_BREAK_EVEN`] popcount, plus — under the portable
    /// instantiation or a small-mixture early-out — every surviving
    /// chunk.
    pub scalar: usize,
}

impl RouteCounts {
    /// Merge another evaluation's counts into this one.
    pub fn add(&mut self, other: &RouteCounts) {
        self.skip += other.skip;
        self.batch += other.batch;
        self.masked += other.masked;
        self.scalar += other.scalar;
    }

    /// Total chunks routed.
    pub fn total(&self) -> usize {
        self.skip + self.batch + self.masked + self.scalar
    }
}

/// The screening quadratic forms under the dispatched madd strategy
/// (outside any target-feature function `mul_add` is a libm call —
/// fine for diagnostics, and it rounds identically to the kernel's
/// hardware FMA).
fn dispatched_chunk_qf(
    lanes: &Lanes,
    base: usize,
    w: usize,
    dxx: f64,
    dxy2: f64,
    dyy: f64,
) -> [f64; LANE] {
    #[cfg(target_arch = "x86_64")]
    if fused::fma_enabled() {
        return chunk_qf::<HwFma>(lanes, base, w, dxx, dxy2, dyy);
    }
    chunk_qf::<ScalarMadd>(lanes, base, w, dxx, dxy2, dyy)
}

fn route_counts_lanes(lanes: &Lanes, center: [f64; 2], px: f64, py: f64) -> RouteCounts {
    let mut counts = RouteCounts::default();
    let n = lanes.len();
    let (dx, dy) = (px - center[0], py - center[1]);
    let (dxx, dxy2, dyy) = (dx * dx, 2.0 * dx * dy, dy * dy);
    // Batch routes fire only in the SIMD derivative kernel past its
    // small-mixture early-out; otherwise survivors stream scalar.
    let batched = fused::fma_enabled() && n > LANE;
    let mut base = 0;
    while base < n {
        let w = (n - base).min(LANE);
        let qf = dispatched_chunk_qf(lanes, base, w, dxx, dxy2, dyy);
        match classify_chunk(&qf, &lanes.qf_cut[base..base + w], w) {
            ChunkRoute::Skip => counts.skip += 1,
            ChunkRoute::BatchFull | ChunkRoute::BatchHalf if batched => counts.batch += 1,
            ChunkRoute::Masked(_) if batched => counts.masked += 1,
            _ => counts.scalar += 1,
        }
        base += LANE;
    }
    counts
}

/// The vectorized value-path instantiation: no survivor compression,
/// each 8-wide screening chunk routed by [`classify_chunk`].
///
/// # Safety
/// Caller must have verified `avx2`+`fma` support at runtime (every
/// call site gates on `fused::fma_enabled()`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn eval_value_lanes_fma(lanes: &Lanes, center: [f64; 2], px: f64, py: f64) -> f64 {
    let n = lanes.len();
    if n <= EXP_BATCH {
        // Mixtures smaller than one exp batch (stars): the batch
        // setup costs more than the libm exponentials it replaces.
        // Same instantiation, so screening is unchanged.
        return eval_value_lanes_impl::<HwFma>(lanes, center, px, py);
    }
    let (dx, dy) = (px - center[0], py - center[1]);
    let (dxx, dxy2, dyy) = (dx * dx, 2.0 * dx * dy, dy * dy);
    let mut total = [0.0; LANE];
    let mut base = 0;
    while base < n {
        let w = (n - base).min(LANE);
        let qf = chunk_qf::<HwFma>(lanes, base, w, dxx, dxy2, dyy);
        match classify_chunk(&qf, &lanes.qf_cut[base..base + w], w) {
            ChunkRoute::Skip => {}
            ChunkRoute::BatchFull => {
                let wn = &lanes.wn[base..base + LANE];
                let e0 = exp4::<HwFma>([-0.5 * qf[0], -0.5 * qf[1], -0.5 * qf[2], -0.5 * qf[3]]);
                let e1 = exp4::<HwFma>([-0.5 * qf[4], -0.5 * qf[5], -0.5 * qf[6], -0.5 * qf[7]]);
                for j in 0..EXP_BATCH {
                    total[j] = HwFma::madd(wn[j], e0[j], total[j]);
                    total[EXP_BATCH + j] =
                        HwFma::madd(wn[EXP_BATCH + j], e1[j], total[EXP_BATCH + j]);
                }
            }
            ChunkRoute::BatchHalf => {
                let wn = &lanes.wn[base..base + EXP_BATCH];
                let e0 = exp4::<HwFma>([-0.5 * qf[0], -0.5 * qf[1], -0.5 * qf[2], -0.5 * qf[3]]);
                for j in 0..EXP_BATCH {
                    total[j] = HwFma::madd(wn[j], e0[j], total[j]);
                }
            }
            ChunkRoute::Masked(keep) => {
                let wn = &lanes.wn[base..base + w];
                let mut off = 0;
                while off + EXP_BATCH <= w {
                    if group_alive(&keep[off..]) >= MASKED_BREAK_EVEN {
                        let e = exp4_masked::<HwFma>(&qf[off..], &keep[off..]);
                        for l in 0..EXP_BATCH {
                            total[off + l] = HwFma::madd(wn[off + l], e[l], total[off + l]);
                        }
                    } else {
                        for l in 0..EXP_BATCH {
                            if keep[off + l] {
                                total[off + l] = HwFma::madd(
                                    wn[off + l],
                                    (-0.5 * qf[off + l]).exp(),
                                    total[off + l],
                                );
                            }
                        }
                    }
                    off += EXP_BATCH;
                }
                for j in off..w {
                    if keep[j] {
                        total[j] = HwFma::madd(wn[j], (-0.5 * qf[j]).exp(), total[j]);
                    }
                }
            }
            ChunkRoute::Scalar(keep) => {
                let wn = &lanes.wn[base..base + w];
                for j in 0..w {
                    if keep[j] {
                        total[j] = HwFma::madd(wn[j], (-0.5 * qf[j]).exp(), total[j]);
                    }
                }
            }
        }
        base += LANE;
    }
    let t0 = (total[0] + total[1]) + (total[2] + total[3]);
    let t1 = (total[4] + total[5]) + (total[6] + total[7]);
    t0 + t1
}

#[inline(always)]
fn eval_value_lanes_impl<F: Fma>(lanes: &Lanes, center: [f64; 2], px: f64, py: f64) -> f64 {
    let (dx, dy) = (px - center[0], py - center[1]);
    let (dxx, dxy2, dyy) = (dx * dx, 2.0 * dx * dy, dy * dy);
    let n = lanes.len();
    let mut total = 0.0;
    let mut base = 0;
    while base < n {
        let w = (n - base).min(LANE);
        let qf = chunk_qf::<F>(lanes, base, w, dxx, dxy2, dyy);
        let cut = &lanes.qf_cut[base..base + w];
        let wn = &lanes.wn[base..base + w];
        for j in 0..w {
            if qf[j] <= cut[j] {
                total = F::madd(wn[j], (-0.5 * qf[j]).exp(), total);
            }
        }
        base += LANE;
    }
    total
}

/// Polynomial `exp` over a 4-lane batch: `out[l] = e^{x[l]}`, valid
/// on the kernel's domain `x ∈ [−QF_HARD_CUT/2, 0]` (extends to any
/// non-overflowing input, but no underflow handling below
/// `2^{−1022}` is needed or provided). The classic Cephes-style
/// scheme — `e^x = 2^k · e^r` with `r = x − k·ln 2` reduced in two
/// parts so the reduction is exact, then a degree-13 Taylor
/// evaluation of `e^r` on `|r| ≤ ½ln 2` (truncation < 4e−18
/// relative) and an exponent-field scale by `2^k`. Total error ~1–2
/// ulp, far inside the kernel's 1e-12 parity bar against the libm
/// `exp` the reference kernel calls. Branch-free straight-line lane
/// loops: inside an `avx2,fma` instantiation the whole batch
/// compiles to vector rounds, FMAs, and one integer shift.
#[inline(always)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))] // only the SIMD paths batch
fn exp4<F: Fma>(x: [f64; EXP_BATCH]) -> [f64; EXP_BATCH] {
    // ln 2 split: hi has its low 32 mantissa bits zeroed, so k·LN2_HI
    // is exact for the |k| ≤ 73 this domain produces.
    const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000);
    const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_6967);
    // Taylor 1/j! for j = 2..=13 (j = 0, 1 are exact in the Horner
    // tail below).
    const C: [f64; 12] = [
        0.5,
        1.0 / 6.0,
        1.0 / 24.0,
        1.0 / 120.0,
        1.0 / 720.0,
        1.0 / 5040.0,
        1.0 / 40320.0,
        1.0 / 362880.0,
        1.0 / 3628800.0,
        1.0 / 39916800.0,
        1.0 / 479001600.0,
        1.0 / 6227020800.0,
    ];
    let mut k = [0.0; EXP_BATCH];
    let mut r = [0.0; EXP_BATCH];
    for l in 0..EXP_BATCH {
        k[l] = (x[l] * std::f64::consts::LOG2_E).round_ties_even();
        r[l] = F::madd(-k[l], LN2_LO, F::madd(-k[l], LN2_HI, x[l]));
    }
    let mut p = [0.0; EXP_BATCH];
    for l in 0..EXP_BATCH {
        let mut acc = C[11];
        for c in C[..11].iter().rev() {
            acc = F::madd(acc, r[l], *c);
        }
        // e^r ≈ 1 + r + r²·(Σ c_j r^{j−2}).
        p[l] = F::madd(acc, r[l] * r[l], r[l]) + 1.0;
    }
    let mut out = [0.0; EXP_BATCH];
    for l in 0..EXP_BATCH {
        // 2^k via the exponent field; k ≥ −73 keeps this normal.
        let two_k = f64::from_bits(((k[l] as i64 + 1023) << 52) as u64);
        out[l] = p[l] * two_k;
    }
    out
}

/// The production per-pixel kernel. Slots: [u0, u1, fd, axis, angle, lr].
///
/// Runs in passes: the lane screening cull ([`screen_lanes`]) drops
/// components outside their screening radius before any `exp` is
/// taken, `exp` is batched over the survivors, and the derivative
/// assembly streams the compact [`EvalBlock`]s. The assembly exploits
/// two structural facts the reference kernel leaves on the table: the
/// lnN Hessian is symmetric (only the lower triangle is accumulated
/// per component, mirrored once per pixel), and the fd-logit slot (2)
/// carries no lnN derivative at all — it enters only through the
/// mixing-weight terms — so the main accumulation skips its row and
/// column entirely.
fn eval_lanes(lanes: &Lanes, center: [f64; 2], px: f64, py: f64, with_shape: bool) -> GeoEval {
    #[cfg(target_arch = "x86_64")]
    if fused::fma_enabled() {
        // SAFETY: fma_enabled() verified avx2+fma at runtime.
        return unsafe { eval_lanes_fma(lanes, center, px, py, with_shape) };
    }
    eval_lanes_impl::<ScalarMadd>(lanes, center, px, py, with_shape)
}

/// The vectorized derivative instantiation. Chunks route through the
/// same [`classify_chunk`] as the value path: a fully-surviving
/// 8-wide chunk takes its exponentials in two [`exp4`] batches and
/// assembles two [`eval_block4`] groups — 4 *consecutive* components
/// per output slot with contiguous vector loads from the field-major
/// [`EvalBlock`] transpose (`Lanes::soa`) and vertical SoA madds
/// into lane accumulators ([`GeoAcc4`]), reduced once per pixel.
/// Partially-culled chunks route by survivor popcount: 4-wide groups
/// with ≥ [`MASKED_BREAK_EVEN`] survivors run the same SoA batch with
/// dead lanes masked to `e = 0` ([`exp4_masked`]), sparser groups
/// stream their survivors through the scalar [`eval_block`] (same
/// instantiation, so screening rounds identically everywhere).
///
/// # Safety
/// Caller must have verified `avx2`+`fma` support at runtime (every
/// call site gates on `fused::fma_enabled()`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn eval_lanes_fma(
    lanes: &Lanes,
    center: [f64; 2],
    px: f64,
    py: f64,
    with_shape: bool,
) -> GeoEval {
    let n = lanes.len();
    if n <= LANE {
        // Small mixtures (stars: a PSF's worth of components) cannot
        // fill SIMD batches; the batch/accumulator setup would cost
        // more than it saves (measured ~6× on the 2-component
        // core+halo star). Stream them through the scalar assembly —
        // same HwFma instantiation, so screening still rounds
        // identically to every other path.
        return eval_lanes_impl::<HwFma>(lanes, center, px, py, with_shape);
    }
    let mut out = GeoEval::zero();
    let mut acc = GeoAcc4::zero();
    let (dx, dy) = (px - center[0], py - center[1]);
    let (dxx, dxy2, dyy) = (dx * dx, 2.0 * dx * dy, dy * dy);
    let mut base = 0;
    while base < n {
        let w = (n - base).min(LANE);
        let qf = chunk_qf::<HwFma>(lanes, base, w, dxx, dxy2, dyy);
        match classify_chunk(&qf, &lanes.qf_cut[base..base + w], w) {
            ChunkRoute::Skip => {}
            ChunkRoute::BatchFull => {
                let e0 = exp4::<HwFma>([-0.5 * qf[0], -0.5 * qf[1], -0.5 * qf[2], -0.5 * qf[3]]);
                let e1 = exp4::<HwFma>([-0.5 * qf[4], -0.5 * qf[5], -0.5 * qf[6], -0.5 * qf[7]]);
                eval_block4::<HwFma>(&lanes.soa, n, base, &e0, dx, dy, with_shape, &mut acc);
                eval_block4::<HwFma>(
                    &lanes.soa,
                    n,
                    base + EXP_BATCH,
                    &e1,
                    dx,
                    dy,
                    with_shape,
                    &mut acc,
                );
            }
            ChunkRoute::BatchHalf => {
                // E.g. the 28-component galaxy mixture's tail.
                let e0 = exp4::<HwFma>([-0.5 * qf[0], -0.5 * qf[1], -0.5 * qf[2], -0.5 * qf[3]]);
                eval_block4::<HwFma>(&lanes.soa, n, base, &e0, dx, dy, with_shape, &mut acc);
            }
            ChunkRoute::Masked(keep) => {
                let mut off = 0;
                while off + EXP_BATCH <= w {
                    if group_alive(&keep[off..]) >= MASKED_BREAK_EVEN {
                        let e = exp4_masked::<HwFma>(&qf[off..], &keep[off..]);
                        eval_block4::<HwFma>(
                            &lanes.soa,
                            n,
                            base + off,
                            &e,
                            dx,
                            dy,
                            with_shape,
                            &mut acc,
                        );
                    } else {
                        for l in 0..EXP_BATCH {
                            if keep[off + l] {
                                eval_block::<HwFma>(
                                    &lanes.blocks[base + off + l],
                                    (-0.5 * qf[off + l]).exp(),
                                    dx,
                                    dy,
                                    with_shape,
                                    &mut out,
                                );
                            }
                        }
                    }
                    off += EXP_BATCH;
                }
                for j in off..w {
                    if keep[j] {
                        eval_block::<HwFma>(
                            &lanes.blocks[base + j],
                            (-0.5 * qf[j]).exp(),
                            dx,
                            dy,
                            with_shape,
                            &mut out,
                        );
                    }
                }
            }
            ChunkRoute::Scalar(keep) => {
                for j in 0..w {
                    if keep[j] {
                        eval_block::<HwFma>(
                            &lanes.blocks[base + j],
                            (-0.5 * qf[j]).exp(),
                            dx,
                            dy,
                            with_shape,
                            &mut out,
                        );
                    }
                }
            }
        }
        base += LANE;
    }
    acc.fold_into(&mut out);
    // Mirror the accumulated lower triangle once per pixel.
    for i in 0..GEO {
        for j in 0..i {
            out.hess[j][i] = out.hess[i][j];
        }
    }
    out
}

/// Length of the packed lower triangle of the 6×6 geometry Hessian.
const GEO_PACKED: usize = GEO * (GEO + 1) / 2;

/// Four-lane accumulator for the batched derivative assembly: every
/// output slot of [`GeoEval`] (value, 6 gradient slots, the packed
/// lower Hessian triangle) carries one partial sum per SIMD lane, so
/// [`eval_block4`] accumulates with purely vertical madds — no
/// horizontal reduction until [`GeoAcc4::fold_into`] runs once per
/// pixel.
#[cfg(target_arch = "x86_64")]
struct GeoAcc4 {
    val: [f64; EXP_BATCH],
    grad: [[f64; EXP_BATCH]; GEO],
    /// Packed lower triangle, row-major: slot (i, j ≤ i) at
    /// `i(i+1)/2 + j`.
    hess: [[f64; EXP_BATCH]; GEO_PACKED],
}

#[cfg(target_arch = "x86_64")]
impl GeoAcc4 {
    #[inline(always)]
    fn zero() -> GeoAcc4 {
        GeoAcc4 {
            val: [0.0; EXP_BATCH],
            grad: [[0.0; EXP_BATCH]; GEO],
            hess: [[0.0; EXP_BATCH]; GEO_PACKED],
        }
    }

    /// Reduce the lanes into the scalar output (fixed lane order:
    /// deterministic across runs).
    #[inline(always)]
    fn fold_into(&self, out: &mut GeoEval) {
        let sum4 = |v: &[f64; EXP_BATCH]| (v[0] + v[1]) + (v[2] + v[3]);
        out.val += sum4(&self.val);
        for i in 0..GEO {
            out.grad[i] += sum4(&self.grad[i]);
            for j in 0..=i {
                out.hess[i][j] += sum4(&self.hess[i * (i + 1) / 2 + j]);
            }
        }
    }
}

/// Load one field's batch: the four consecutive lanes `g..g+4` of
/// field `f` in the [`EvalBlock`] transpose — a single unaligned
/// vector load in the SIMD instantiation.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn ld4(soa: &[f64], n: usize, f: usize, g: usize) -> [f64; EXP_BATCH] {
    let base = f * n + g;
    let mut out = [0.0; EXP_BATCH];
    out.copy_from_slice(&soa[base..base + EXP_BATCH]);
    out
}

/// Derivative assembly for one batch of four *consecutive* surviving
/// components `g..g+4`: the lane-`l` columns of every intermediate
/// (`h0`, `g0`, `gs`, …) belong to component `g + l`, every field
/// batch is one contiguous load from the field-major transpose
/// ([`ld4`]), each output slot accumulates all four lanes with one
/// vertical madd per lane, and nothing is reduced horizontally (see
/// [`GeoAcc4`]). The math is [`eval_block`]'s, transposed to
/// struct-of-arrays.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal hot-path plumbing
fn eval_block4<F: Fma>(
    soa: &[f64],
    n: usize,
    g: usize,
    e: &[f64; EXP_BATCH],
    dx: f64,
    dy: f64,
    with_shape: bool,
    acc: &mut GeoAcc4,
) {
    let m0 = ld4(soa, n, F_M, g);
    let m1 = ld4(soa, n, F_M + 1, g);
    let m2 = ld4(soa, n, F_M + 2, g);
    let wnb = ld4(soa, n, F_WN, g);
    let jt0 = ld4(soa, n, F_JTM, g);
    let jt1 = ld4(soa, n, F_JTM + 1, g);
    let jt2 = ld4(soa, n, F_JTM + 2, g);
    let jt3 = ld4(soa, n, F_JTM + 3, g);
    let huu0 = ld4(soa, n, F_HUU, g);
    let huu1 = ld4(soa, n, F_HUU + 1, g);
    let huu2 = ld4(soa, n, F_HUU + 2, g);

    let mut h0 = [0.0; EXP_BATCH];
    let mut h1 = [0.0; EXP_BATCH];
    let mut wn = [0.0; EXP_BATCH];
    let mut g0 = [0.0; EXP_BATCH];
    let mut g1 = [0.0; EXP_BATCH];
    for l in 0..EXP_BATCH {
        h0[l] = F::madd(m0[l], dx, m1[l] * dy);
        h1[l] = F::madd(m1[l], dx, m2[l] * dy);
        wn[l] = wnb[l] * e[l];
        // lnN gradient: gu = Jᵀ h; gs per shape.
        g0[l] = F::madd(jt0[l], dx, jt1[l] * dy);
        g1[l] = F::madd(jt2[l], dx, jt3[l] * dy);
    }
    for l in 0..EXP_BATCH {
        acc.val[l] += wn[l];
        acc.grad[0][l] = F::madd(wn[l], g0[l], acc.grad[0][l]);
        acc.grad[1][l] = F::madd(wn[l], g1[l], acc.grad[1][l]);
        // u-block (lower triangle): wn·(g gᵀ + ∂²lnN/∂u²).
        acc.hess[0][l] = F::madd(wn[l], F::madd(g0[l], g0[l], huu0[l]), acc.hess[0][l]);
        acc.hess[1][l] = F::madd(wn[l], F::madd(g1[l], g0[l], huu1[l]), acc.hess[1][l]);
        acc.hess[2][l] = F::madd(wn[l], F::madd(g1[l], g1[l], huu2[l]), acc.hess[2][l]);
    }
    if !with_shape {
        return;
    }

    let mut h00 = [0.0; EXP_BATCH];
    let mut h01 = [0.0; EXP_BATCH];
    let mut h11 = [0.0; EXP_BATCH];
    for l in 0..EXP_BATCH {
        h00[l] = h0[l] * h0[l];
        h01[l] = h0[l] * h1[l];
        h11[l] = h1[l] * h1[l];
    }
    let mut gs = [[0.0; EXP_BATCH]; 3];
    for s in 0..3 {
        let d0 = ld4(soa, n, F_DSIG + 3 * s, g);
        let d1 = ld4(soa, n, F_DSIG + 3 * s + 1, g);
        let d2 = ld4(soa, n, F_DSIG + 3 * s + 2, g);
        let tr = ld4(soa, n, F_TRMDS + s, g);
        for l in 0..EXP_BATCH {
            // dsig is prefolded: the quad over (h00, h01, h11) IS
            // ½hᵀdΣh.
            gs[s][l] = F::madd(
                d0[l],
                h00[l],
                F::madd(d1[l], h01[l], F::madd(d2[l], h11[l], -tr[l])),
            );
            acc.grad[3 + s][l] = F::madd(wn[l], gs[s][l], acc.grad[3 + s][l]);
        }
    }
    for s in 0..3 {
        let row = (3 + s) * (4 + s) / 2;
        let k0 = ld4(soa, n, F_KU + 4 * s, g);
        let k1 = ld4(soa, n, F_KU + 4 * s + 1, g);
        let k2 = ld4(soa, n, F_KU + 4 * s + 2, g);
        let k3 = ld4(soa, n, F_KU + 4 * s + 3, g);
        for l in 0..EXP_BATCH {
            // ∂²lnN/∂u∂s = −(Jᵀ M dΣ_s) h; rows 3+s, cols 0..1.
            let v0 = -F::madd(k0[l], h0[l], k1[l] * h1[l]);
            let v1 = -F::madd(k2[l], h0[l], k3[l] * h1[l]);
            acc.hess[row][l] = F::madd(wn[l], F::madd(gs[s][l], g0[l], v0), acc.hess[row][l]);
            acc.hess[row + 1][l] =
                F::madd(wn[l], F::madd(gs[s][l], g1[l], v1), acc.hess[row + 1][l]);
        }
        for s2 in 0..=s {
            let p = s * (s + 1) / 2 + s2;
            let q0 = ld4(soa, n, F_HQ + 3 * p, g);
            let q1 = ld4(soa, n, F_HQ + 3 * p + 1, g);
            let q2 = ld4(soa, n, F_HQ + 3 * p + 2, g);
            let hc = ld4(soa, n, F_HC + p, g);
            for l in 0..EXP_BATCH {
                // One precombined, prefolded quad form:
                // ½ hᵀd²Σh − hᵀ(dΣMdΣ′)h + const.
                let second = F::madd(
                    q0[l],
                    h00[l],
                    F::madd(q1[l], h01[l], F::madd(q2[l], h11[l], hc[l])),
                );
                acc.hess[row + 3 + s2][l] = F::madd(
                    wn[l],
                    F::madd(gs[s][l], gs[s2][l], second),
                    acc.hess[row + 3 + s2][l],
                );
            }
        }
    }

    // Mixing-weight (fd) terms: row/col 2 (packed row offset 3).
    let dwnb = ld4(soa, n, F_DWN, g);
    let d2wnb = ld4(soa, n, F_D2WN, g);
    for l in 0..EXP_BATCH {
        let dwn = dwnb[l] * e[l];
        acc.grad[2][l] += dwn;
        acc.hess[5][l] = F::madd(d2wnb[l], e[l], acc.hess[5][l]);
        acc.hess[3][l] = F::madd(dwn, g0[l], acc.hess[3][l]);
        acc.hess[4][l] = F::madd(dwn, g1[l], acc.hess[4][l]);
        for s in 0..3 {
            let row = (3 + s) * (4 + s) / 2;
            acc.hess[row + 2][l] = F::madd(dwn, gs[s][l], acc.hess[row + 2][l]);
        }
    }
}

#[inline(always)]
fn eval_lanes_impl<F: Fma>(
    lanes: &Lanes,
    center: [f64; 2],
    px: f64,
    py: f64,
    with_shape: bool,
) -> GeoEval {
    let mut out = GeoEval::zero();
    let (dx, dy) = (px - center[0], py - center[1]);
    let (dxx, dxy2, dyy) = (dx * dx, 2.0 * dx * dy, dy * dy);
    let n = lanes.len();
    let mut base = 0;
    while base < n {
        let w = (n - base).min(LANE);
        let qf = chunk_qf::<F>(lanes, base, w, dxx, dxy2, dyy);
        let cut = &lanes.qf_cut[base..base + w];
        for j in 0..w {
            if qf[j] > cut[j] {
                continue;
            }
            let e = (-0.5 * qf[j]).exp();
            eval_block::<F>(&lanes.blocks[base + j], e, dx, dy, with_shape, &mut out);
        }
        base += LANE;
    }
    // Mirror the accumulated lower triangle once per pixel.
    for i in 0..GEO {
        for j in 0..i {
            out.hess[j][i] = out.hess[i][j];
        }
    }
    out
}

/// Derivative assembly for one surviving component (`e` is its
/// normalized exponential). Accumulates the lower triangle only; the
/// caller mirrors once per pixel. Force-inlined so the accumulator
/// slots stay in registers across the survivor loop and the madds
/// contract under the FMA instantiation.
#[inline(always)]
fn eval_block<F: Fma>(
    b: &EvalBlock,
    e: f64,
    dx: f64,
    dy: f64,
    with_shape: bool,
    out: &mut GeoEval,
) {
    let h0 = F::madd(b.m[0], dx, b.m[1] * dy);
    let h1 = F::madd(b.m[1], dx, b.m[2] * dy);
    let wn = b.wn * e;

    // lnN gradient: gu = Jᵀ h; gs per shape.
    let g0 = F::madd(b.jt_m[0], dx, b.jt_m[1] * dy);
    let g1 = F::madd(b.jt_m[2], dx, b.jt_m[3] * dy);
    out.val += wn;
    out.grad[0] = F::madd(wn, g0, out.grad[0]);
    out.grad[1] = F::madd(wn, g1, out.grad[1]);

    // u-block (lower triangle): wn·(g gᵀ + ∂²lnN/∂u²).
    out.hess[0][0] = F::madd(wn, F::madd(g0, g0, b.huu[0]), out.hess[0][0]);
    out.hess[1][0] = F::madd(wn, F::madd(g1, g0, b.huu[1]), out.hess[1][0]);
    out.hess[1][1] = F::madd(wn, F::madd(g1, g1, b.huu[2]), out.hess[1][1]);
    if !with_shape {
        return;
    }

    let h00 = h0 * h0;
    let h01 = h0 * h1;
    let h11 = h1 * h1;
    let mut gs = [0.0; 3];
    for s in 0..3 {
        // dsig is prefolded: the quad over (h00, h01, h11) IS ½hᵀdΣh.
        let d = &b.dsig[s];
        gs[s] = F::madd(
            d[0],
            h00,
            F::madd(d[1], h01, F::madd(d[2], h11, -b.tr_mds[s])),
        );
        out.grad[3 + s] = F::madd(wn, gs[s], out.grad[3 + s]);
    }
    for s in 0..3 {
        // ∂²lnN/∂u∂s = −(Jᵀ M dΣ_s) h; rows 3+s, cols 0..1.
        let k = &b.ku[s];
        let v0 = -F::madd(k[0], h0, k[1] * h1);
        let v1 = -F::madd(k[2], h0, k[3] * h1);
        out.hess[3 + s][0] = F::madd(wn, F::madd(gs[s], g0, v0), out.hess[3 + s][0]);
        out.hess[3 + s][1] = F::madd(wn, F::madd(gs[s], g1, v1), out.hess[3 + s][1]);
        for s2 in 0..=s {
            // One precombined, prefolded quad form:
            // ½ hᵀd²Σh − hᵀ(dΣMdΣ′)h + const.
            let p = s * (s + 1) / 2 + s2;
            let hq = &b.hq[p];
            let second = F::madd(
                hq[0],
                h00,
                F::madd(hq[1], h01, F::madd(hq[2], h11, b.hc[p])),
            );
            out.hess[3 + s][3 + s2] =
                F::madd(wn, F::madd(gs[s], gs[s2], second), out.hess[3 + s][3 + s2]);
        }
    }

    // Mixing-weight (fd) terms: row/col 2.
    let dwn = b.dwn * e;
    out.grad[2] += dwn;
    out.hess[2][2] = F::madd(b.d2wn, e, out.hess[2][2]);
    out.hess[2][0] = F::madd(dwn, g0, out.hess[2][0]);
    out.hess[2][1] = F::madd(dwn, g1, out.hess[2][1]);
    for s in 0..3 {
        out.hess[3 + s][2] = F::madd(dwn, gs[s], out.hess[3 + s][2]);
    }
}

/// The pre-refactor per-pixel kernel, frozen verbatim as the parity
/// and benchmark reference for the culled, lane-batched
/// [`eval_lanes`]. Reached through [`PreparedStar::eval_reference`] /
/// [`PreparedGalaxy::eval_reference`]; not for production use.
fn eval_prepared_reference(
    comps: &[PreparedComp],
    center: [f64; 2],
    px: f64,
    py: f64,
    with_shape: bool,
) -> GeoEval {
    let mut out = GeoEval::zero();
    let delta = [px - center[0], py - center[1]];
    for c in comps {
        let h = c.m.mv(delta);
        let qf = delta[0] * h[0] + delta[1] * h[1];
        if qf > 100.0 {
            continue; // < e⁻⁵⁰ of peak: numerically zero
        }
        let n = c.norm * (-0.5 * qf).exp();
        let wn = c.weight * n;

        // lnN gradient: gu = Jᵀ h; gs per shape.
        let gu = [
            c.jt_m[0][0] * delta[0] + c.jt_m[0][1] * delta[1],
            c.jt_m[1][0] * delta[0] + c.jt_m[1][1] * delta[1],
        ];
        let mut g = [0.0; GEO];
        g[0] = gu[0];
        g[1] = gu[1];
        if with_shape {
            for s in 0..3 {
                g[3 + s] = 0.5 * c.dsig[s].quad(h) - c.tr_mds[s];
            }
        }

        // lnN Hessian.
        let mut hl = [[0.0; GEO]; GEO];
        hl[0][0] = c.huu[0][0];
        hl[0][1] = c.huu[0][1];
        hl[1][0] = c.huu[1][0];
        hl[1][1] = c.huu[1][1];
        if with_shape {
            for s in 0..3 {
                // ∂²lnN/∂u∂s = −(Jᵀ M dΣ_s) h
                let v = [
                    -(c.ku[s][0][0] * h[0] + c.ku[s][0][1] * h[1]),
                    -(c.ku[s][1][0] * h[0] + c.ku[s][1][1] * h[1]),
                ];
                hl[0][3 + s] = v[0];
                hl[3 + s][0] = v[0];
                hl[1][3 + s] = v[1];
                hl[3 + s][1] = v[1];
                for s2 in s..3 {
                    let second = -c.cross_g[s][s2].quad(h)
                        + c.cross_tr[s][s2]
                        + 0.5 * c.d2sig[s][s2].quad(h)
                        - c.tr_md2s[s][s2];
                    hl[3 + s][3 + s2] = second;
                    hl[3 + s2][3 + s] = second;
                }
            }
        }

        // Assemble N-level derivatives: ∇(W·N) over all slots including
        // the mixing weight derivative in slot 2 (fd).
        out.val += wn;
        for i in 0..GEO {
            out.grad[i] += wn * g[i];
        }
        for i in 0..GEO {
            for j in 0..GEO {
                out.hess[i][j] += wn * (g[i] * g[j] + hl[i][j]);
            }
        }
        if with_shape {
            let dwn = c.dw_fd * n;
            out.grad[2] += dwn;
            out.hess[2][2] += c.d2w_fd * n;
            for i in 0..GEO {
                if i == 2 {
                    continue;
                }
                out.hess[2][i] += dwn * g[i];
                out.hess[i][2] += dwn * g[i];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const JAC: [[f64; 2]; 2] = [[0.7, 0.05], [-0.03, 0.71]]; // px per arcsec

    fn fd_eval_star(u: [f64; 2], px: f64, py: f64) -> f64 {
        PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], u, &JAC)
            .eval(px, py)
            .val
    }

    fn geo(fd: f64, ql: f64, th: f64, lr: f64) -> GalaxyGeo {
        GalaxyGeo {
            fd_logit: fd,
            axis_logit: ql,
            angle: th,
            ln_radius: lr,
        }
    }

    fn fd_eval_gal(g6: [f64; 6], px: f64, py: f64) -> f64 {
        PreparedGalaxy::new(
            &Psf::core_halo(1.3),
            &geo(g6[2], g6[3], g6[4], g6[5]),
            [10.0, 12.0],
            [g6[0], g6[1]],
            &JAC,
        )
        .eval(px, py)
        .val
    }

    #[test]
    fn star_matches_survey_gmm() {
        let psf = Psf::core_halo(1.3);
        let prep = PreparedStar::new(&psf, [10.0, 12.0], [0.0, 0.0], &JAC);
        let gmm = psf.to_gmm().shifted(10.0, 12.0);
        for &(x, y) in &[(10.0, 12.0), (11.5, 12.5), (8.0, 14.0)] {
            let a = prep.eval(x, y).val;
            let b = gmm.eval(x, y);
            assert!((a - b).abs() < 1e-12, "at ({x},{y}): {a} vs {b}");
        }
    }

    #[test]
    fn star_position_gradient_matches_fd() {
        let h = 1e-5;
        let (px, py) = (11.3, 12.9);
        let e =
            PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], [0.2, -0.1], &JAC).eval(px, py);
        for k in 0..2 {
            let mut up = [0.2, -0.1];
            let mut um = up;
            up[k] += h;
            um[k] -= h;
            let fd = (fd_eval_star(up, px, py) - fd_eval_star(um, px, py)) / (2.0 * h);
            assert!(
                (e.grad[k] - fd).abs() < 1e-6 * (1.0 + fd.abs()),
                "grad[{k}]: {} vs fd {}",
                e.grad[k],
                fd
            );
        }
    }

    #[test]
    fn star_position_hessian_matches_fd() {
        let h = 1e-4;
        let (px, py) = (11.3, 12.9);
        let u0 = [0.2, -0.1];
        let grad_at = |u: [f64; 2]| {
            PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], u, &JAC)
                .eval(px, py)
                .grad
        };
        let e = PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], u0, &JAC).eval(px, py);
        for k in 0..2 {
            let mut up = u0;
            let mut um = u0;
            up[k] += h;
            um[k] -= h;
            let gp = grad_at(up);
            let gm = grad_at(um);
            for l in 0..2 {
                let fd = (gp[l] - gm[l]) / (2.0 * h);
                assert!(
                    (e.hess[l][k] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "hess[{l}][{k}]: {} vs fd {}",
                    e.hess[l][k],
                    fd
                );
            }
        }
    }

    #[test]
    fn galaxy_gradient_matches_fd_all_slots() {
        let h = 1e-5;
        let (px, py) = (12.0, 13.5);
        let base = [0.1, -0.2, 0.3, 0.5, 0.8, 0.4];
        let prep = PreparedGalaxy::new(
            &Psf::core_halo(1.3),
            &geo(base[2], base[3], base[4], base[5]),
            [10.0, 12.0],
            [base[0], base[1]],
            &JAC,
        );
        let e = prep.eval(px, py);
        for k in 0..6 {
            let mut up = base;
            let mut um = base;
            up[k] += h;
            um[k] -= h;
            let fd = (fd_eval_gal(up, px, py) - fd_eval_gal(um, px, py)) / (2.0 * h);
            assert!(
                (e.grad[k] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "grad[{k}]: {} vs fd {}",
                e.grad[k],
                fd
            );
        }
    }

    #[test]
    fn galaxy_hessian_matches_fd_all_slots() {
        let h = 1e-4;
        let (px, py) = (12.0, 13.5);
        let base = [0.1, -0.2, 0.3, 0.5, 0.8, 0.4];
        let grad_at = |g6: [f64; 6]| {
            PreparedGalaxy::new(
                &Psf::core_halo(1.3),
                &geo(g6[2], g6[3], g6[4], g6[5]),
                [10.0, 12.0],
                [g6[0], g6[1]],
                &JAC,
            )
            .eval(px, py)
            .grad
        };
        let e = PreparedGalaxy::new(
            &Psf::core_halo(1.3),
            &geo(base[2], base[3], base[4], base[5]),
            [10.0, 12.0],
            [base[0], base[1]],
            &JAC,
        )
        .eval(px, py);
        for k in 0..6 {
            let mut up = base;
            let mut um = base;
            up[k] += h;
            um[k] -= h;
            let gp = grad_at(up);
            let gm = grad_at(um);
            for l in 0..6 {
                let fd = (gp[l] - gm[l]) / (2.0 * h);
                let scale = 1.0 + fd.abs().max(e.hess[l][k].abs());
                assert!(
                    (e.hess[l][k] - fd).abs() < 5e-4 * scale,
                    "hess[{l}][{k}]: {} vs fd {}",
                    e.hess[l][k],
                    fd
                );
            }
        }
    }

    #[test]
    fn galaxy_flux_integrates_to_one() {
        // Sum over a wide pixel grid ≈ total flux = 1 (unit-flux G).
        let prep = PreparedGalaxy::new(
            &Psf::single(1.2),
            &geo(0.0, 0.8, 0.3, 0.0), // r_e = 1 arcsec ≈ 0.7 px here
            [40.0, 40.0],
            [0.0, 0.0],
            &JAC,
        );
        let mut total = 0.0;
        for y in 0..80 {
            for x in 0..80 {
                total += prep.eval(x as f64 + 0.5, y as f64 + 0.5).val;
            }
        }
        assert!((total - 1.0).abs() < 0.02, "total {total}");
    }

    #[test]
    fn cull_threshold_is_on_certified_side() {
        // The log-space fixed-point solve must land where the envelope
        // bound is at or below the tolerance (culling never exceeds
        // the advertised per-component error), across many scales.
        for &tol in &[1e-14, 1e-12, 1e-9, 1e-6, 1e-3] {
            for &amp_parts in &[(1.0, 0.1, 0.5), (0.02, 0.15, 8.0), (1e-4, 2.0, 120.0)] {
                let (wmax, norm, cmax) = amp_parts;
                let cut = cull_threshold(tol, wmax, norm, cmax);
                assert!((QF_CUT_FLOOR..=QF_HARD_CUT).contains(&cut), "cut {cut}");
                let amp = wmax * norm * 2.0 * (1.0 + cmax) * (1.0 + cmax);
                if cut < QF_HARD_CUT {
                    assert!(
                        amp * cull_envelope(cut) <= tol * (1.0 + 1e-9),
                        "tol {tol}, amp {amp}: envelope {} at cut {cut} exceeds tol",
                        amp * cull_envelope(cut)
                    );
                }
            }
            // Sweep amp/tol densely across [~0, 10], in particular the
            // sub-1 band where the fixed-point root sits near the
            // floor and converges slowly — the regime where a bounded
            // nudge loop once returned an uncertified radius.
            for i in 1..=200 {
                let ratio = 0.05 * i as f64;
                let wmax = ratio * tol / 2.0; // norm = 1, cmax = 0
                let cut = cull_threshold(tol, wmax, 1.0, 0.0);
                assert!((QF_CUT_FLOOR..=QF_HARD_CUT).contains(&cut), "cut {cut}");
                if cut < QF_HARD_CUT {
                    let amp = 2.0 * wmax;
                    assert!(
                        amp * cull_envelope(cut) <= tol * (1.0 + 1e-9),
                        "tol {tol}, amp/tol {ratio}: envelope {} at cut {cut} exceeds tol",
                        amp * cull_envelope(cut)
                    );
                }
            }
        }
        // Zero tolerance degenerates to the hard cutoff.
        assert_eq!(cull_threshold(0.0, 1.0, 1.0, 1.0), QF_HARD_CUT);
    }

    #[test]
    fn culled_star_eval_matches_reference_exactly_at_zero_tol() {
        let psf = Psf::core_halo(1.3);
        let prep = PreparedStar::new(&psf, [10.0, 12.0], [0.1, -0.2], &JAC);
        for &(x, y) in &[(10.5, 12.5), (14.0, 9.0), (30.0, 30.0)] {
            let a = prep.eval(x, y);
            let b = prep.eval_reference(x, y);
            assert!((a.val - b.val).abs() <= 1e-12 * (1.0 + b.val.abs()));
            for i in 0..GEO {
                assert!((a.grad[i] - b.grad[i]).abs() <= 1e-12 * (1.0 + b.grad[i].abs()));
                for j in 0..GEO {
                    assert!(
                        (a.hess[i][j] - b.hess[i][j]).abs() <= 1e-12 * (1.0 + b.hess[i][j].abs())
                    );
                }
            }
        }
    }

    #[test]
    fn exp4_matches_libm_within_ulps() {
        // The batched polynomial exp must track libm exp to a couple
        // of ulps across the kernel's whole domain [−50, 0] (qf up to
        // the hard cut), under both madd strategies.
        let mut worst: f64 = 0.0;
        for i in 0..=5000 {
            let x = -50.0 * i as f64 / 5000.0;
            let xs = [x, x - 0.013, (x - 0.27).max(-50.0), x * 0.5];
            let scalar = exp4::<ScalarMadd>(xs);
            for l in 0..EXP_BATCH {
                let want = xs[l].exp();
                let rel = ((scalar[l] - want) / want).abs();
                worst = worst.max(rel);
            }
            #[cfg(target_arch = "x86_64")]
            {
                // HwFma::madd is mul_add — fused rounding regardless
                // of target features, so this exercises the same
                // arithmetic the avx2 instantiation runs.
                let hw = exp4::<HwFma>(xs);
                for l in 0..EXP_BATCH {
                    let want = xs[l].exp();
                    worst = worst.max(((hw[l] - want) / want).abs());
                }
            }
        }
        assert!(worst < 1e-15, "exp4 worst relative error {worst:.3e}");
    }

    /// Regression test for the value/derivative dispatch mismatch:
    /// `eval_value_lanes` was pinned to the portable madds while
    /// `eval_lanes` dispatched hardware FMA, so on AVX2 machines the
    /// two paths rounded the screening quadratic form differently —
    /// a component sitting exactly at its screening radius could be
    /// culled in the value path but kept in the derivative path (or
    /// vice versa), making trust-region values and gradients
    /// mutually inconsistent at the cut. Both paths now route
    /// through one process-global dispatch decision.
    #[test]
    fn value_and_derivative_paths_cull_identically_at_screening_radius() {
        // Single-component star: culled ⇔ the evaluation is exactly
        // zero, so zero-ness of each path exposes its decision.
        let psf = Psf::single(1.1);
        let mut prep = PreparedStar::new(&psf, [0.0, 0.0], [0.0, 0.0], &JAC);
        assert_eq!(prep.n_comps(), 1);

        // Place the component *exactly* at its screening radius for a
        // sweep of pixels: set the cut to the very qf each dispatch
        // path computes there, then walk a few ulps to either side.
        for i in 0..200 {
            let px = 1.0 + 0.11 * i as f64;
            let py = 0.7 + 0.047 * i as f64;
            let (dx, dy) = (px, py);
            let (dxx, dxy2, dyy) = (dx * dx, 2.0 * dx * dy, dy * dy);
            // The exact qf the production screening computes for this
            // pixel under the *dispatched* strategy.
            let qf_scalar = chunk_qf::<ScalarMadd>(&prep.lanes, 0, 1, dxx, dxy2, dyy)[0];
            #[cfg(target_arch = "x86_64")]
            let qf_hw = chunk_qf::<HwFma>(&prep.lanes, 0, 1, dxx, dxy2, dyy)[0];
            #[cfg(not(target_arch = "x86_64"))]
            let qf_hw = qf_scalar;
            // Pin the cut at each candidate rounding of the qf (and a
            // few ulps around) — under the old per-path dispatch, any
            // qf_scalar ≠ qf_hw here made the paths disagree.
            for cut in [
                qf_scalar,
                qf_hw,
                qf_scalar - 4.0 * f64::EPSILON * qf_scalar,
                qf_hw + 4.0 * f64::EPSILON * qf_hw,
            ] {
                prep.lanes.qf_cut[0] = cut;
                let val_path_keeps = prep.eval_value(px, py) != 0.0;
                let deriv_path_keeps = prep.eval(px, py).val != 0.0;
                assert_eq!(
                    val_path_keeps, deriv_path_keeps,
                    "culling mismatch at ({px},{py}) cut {cut}: \
                     value path keeps: {val_path_keeps}, derivative path keeps: {deriv_path_keeps}"
                );
            }
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let prep = PreparedGalaxy::new(
            &Psf::core_halo(1.1),
            &geo(-0.4, 0.9, 1.2, 0.6),
            [10.0, 12.0],
            [0.3, 0.1],
            &JAC,
        );
        let e = prep.eval(11.0, 13.0);
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (e.hess[i][j] - e.hess[j][i]).abs() < 1e-12,
                    "asym at ({i},{j})"
                );
            }
        }
    }

    /// Force an arbitrary survivor pattern onto the first `LANE` lanes
    /// of a prepared mixture: bit `j` of `alive` keeps lane `j`
    /// (screening cut at the hard cutoff), a cleared bit kills it
    /// (cut below any reachable quadratic form). Later lanes keep
    /// their prepared cuts.
    fn force_pattern(cuts: &mut [f64], alive: u32) {
        for (j, cut) in cuts.iter_mut().take(LANE).enumerate() {
            *cut = if alive & (1 << j) != 0 {
                QF_HARD_CUT
            } else {
                -1.0
            };
        }
    }

    fn assert_geo_parity(a: &GeoEval, b: &GeoEval, what: &str) {
        let close = |x: f64, y: f64, slot: &str| {
            assert!(
                (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                "{what} {slot}: {x} vs {y}"
            );
        };
        close(a.val, b.val, "val");
        for i in 0..GEO {
            close(a.grad[i], b.grad[i], &format!("grad[{i}]"));
            for j in 0..GEO {
                close(a.hess[i][j], b.hess[i][j], &format!("hess[{i}][{j}]"));
            }
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The masked-SoA mixed-survival route against the portable
        /// per-survivor reference, across every survivor pattern of
        /// the first chunk's two 4-wide groups (0..4 lanes alive per
        /// group — below, at, and above [`MASKED_BREAK_EVEN`]) and of
        /// the mixture's final half chunk. The pinned cuts sit far
        /// from every reachable quadratic form, so the dispatched and
        /// portable instantiations make identical keep decisions and
        /// the comparison isolates the masked assembly itself.
        #[test]
        fn masked_route_matches_portable_across_survivor_patterns(
            alive in 0u32..256,
            tail_alive in 0u32..16,
            off in (-2.5..2.5f64, -2.5..2.5f64),
            fd in -1.5..1.5f64,
            lr in -0.5..0.7f64,
        ) {
            let prep_geo = geo(fd, 0.6, 0.9, lr);
            let mut prep = PreparedGalaxy::new(
                &Psf::core_halo(1.25),
                &prep_geo,
                [10.0, 12.0],
                [0.1, -0.05],
                &JAC,
            );
            // 28 components: three full chunks plus a half chunk, so
            // both the full-width and half-width mixed routes exist.
            prop_assert_eq!(prep.n_comps(), 28);
            force_pattern(&mut prep.lanes.qf_cut[..LANE], alive);
            force_pattern(&mut prep.lanes.qf_cut[24..28], tail_alive);

            let (px, py) = (10.0 + off.0, 12.0 + off.1);
            let dispatched = prep.eval(px, py);
            let portable = prep.eval_portable(px, py);
            assert_geo_parity(&dispatched, &portable, "masked deriv");
            let v_disp = prep.eval_value(px, py);
            let v_port = prep.eval_value_portable(px, py);
            prop_assert!(
                (v_disp - v_port).abs() <= 1e-12 * (1.0 + v_port.abs()),
                "masked value: {} vs {}", v_disp, v_port
            );
            // The value and derivative paths share the router bit for
            // bit: a fully-dead mixture must be exactly zero in both.
            if alive == 0 && tail_alive == 0 {
                let mid = &mut prep.lanes.qf_cut[LANE..24];
                for c in mid.iter_mut() {
                    *c = -1.0;
                }
                prop_assert!(prep.eval(px, py).val == 0.0);
                prop_assert!(prep.eval_value(px, py) == 0.0);
            }
        }
    }
}
