//! Hand-coded derivatives of bivariate-normal source appearances.
//!
//! The hot per-pixel kernel of Celeste evaluates, for each source, its
//! unit-flux appearance `G(pixel)` — a Gaussian mixture — together with
//! exact first and second derivatives with respect to the geometry
//! parameters: position offset `u` (2) and, for galaxies, the shape
//! block `(deV-logit, axis-logit, angle, ln-radius)` (4). The paper
//! hand-codes these ("we use our own hand-coded derivatives that
//! leverage custom index types to exploit Hessian sparsity", §V); the
//! AD crate verifies them in tests.
//!
//! Layout of the 6-slot geometry gradient/Hessian used throughout:
//! `[u0, u1, fd_logit, axis_logit, angle, ln_radius]`. Stars populate
//! only the first two slots.
//!
//! All pixel-independent quantities (inverse covariances, the Σ-chain
//! matrices, trace contractions) are precomputed once per Newton
//! iteration in [`PreparedStar`] / [`PreparedGalaxy`]; the per-pixel
//! work is a handful of 2-vector contractions per mixture component.

use crate::params::sigmoid;
use celeste_survey::galaxy::{dev_mixture, exp_mixture};
use celeste_survey::gmm::Cov2;
use celeste_survey::psf::Psf;

/// Number of geometry slots (2 position + 4 shape).
pub const GEO: usize = 6;

/// Value, gradient and Hessian of `G` at one pixel over the 6 geometry
/// slots (star: only slots 0–1 are nonzero).
#[derive(Debug, Clone, Copy)]
pub struct GeoEval {
    pub val: f64,
    pub grad: [f64; GEO],
    pub hess: [[f64; GEO]; GEO],
}

impl GeoEval {
    fn zero() -> GeoEval {
        GeoEval {
            val: 0.0,
            grad: [0.0; GEO],
            hess: [[0.0; GEO]; GEO],
        }
    }
}

/// Symmetric 2×2 matrix as (xx, xy, yy) with the contraction helpers
/// the lnN calculus needs.
#[derive(Debug, Clone, Copy, Default)]
struct Sym2 {
    xx: f64,
    xy: f64,
    yy: f64,
}

impl Sym2 {
    fn from_cov(c: &Cov2) -> Sym2 {
        Sym2 {
            xx: c.xx,
            xy: c.xy,
            yy: c.yy,
        }
    }

    fn scale(&self, s: f64) -> Sym2 {
        Sym2 {
            xx: self.xx * s,
            xy: self.xy * s,
            yy: self.yy * s,
        }
    }

    /// Quadratic form hᵀ A h.
    #[inline]
    fn quad(&self, h: [f64; 2]) -> f64 {
        self.xx * h[0] * h[0] + 2.0 * self.xy * h[0] * h[1] + self.yy * h[1] * h[1]
    }

    /// Matrix-vector product A h.
    #[inline]
    fn mv(&self, h: [f64; 2]) -> [f64; 2] {
        [
            self.xx * h[0] + self.xy * h[1],
            self.xy * h[0] + self.yy * h[1],
        ]
    }

    /// trace(A B) for symmetric A, B.
    #[inline]
    fn trace_prod(&self, b: &Sym2) -> f64 {
        self.xx * b.xx + 2.0 * self.xy * b.xy + self.yy * b.yy
    }

    /// A B A for symmetric A (self) and B: returns the symmetric result.
    fn sandwich(&self, b: &Sym2) -> Sym2 {
        // (A B) then (·) A; result is symmetric by construction.
        let ab = [
            [
                self.xx * b.xx + self.xy * b.xy,
                self.xx * b.xy + self.xy * b.yy,
            ],
            [
                self.xy * b.xx + self.yy * b.xy,
                self.xy * b.xy + self.yy * b.yy,
            ],
        ];
        Sym2 {
            xx: ab[0][0] * self.xx + ab[0][1] * self.xy,
            xy: ab[0][0] * self.xy + ab[0][1] * self.yy,
            yy: ab[1][0] * self.xy + ab[1][1] * self.yy,
        }
    }
}

/// One prepared mixture component: everything pixel-independent.
#[derive(Debug, Clone)]
struct PreparedComp {
    /// Base weight (PSF weight × profile weight, before the deV/exp
    /// mixing derivative bookkeeping).
    weight: f64,
    /// d weight / d fd_logit and second derivative (zero for stars).
    dw_fd: f64,
    d2w_fd: f64,
    /// Inverse covariance M = Σ⁻¹ (pixel frame).
    m: Sym2,
    /// Normalization weight/(2π √det Σ) … note: *without* the component
    /// weight; `norm` is 1/(2π √det).
    norm: f64,
    /// −Jᵀ M J : the constant ∂²lnN/∂u² block (row-major 2×2).
    huu: [[f64; 2]; 2],
    /// Jᵀ M (for gu = Jᵀ h = (Jᵀ M) δ and cross terms).
    jt_m: [[f64; 2]; 2],
    /// dΣpix/ds for s ∈ {axis, angle, ln_radius} (indices 0,1,2).
    dsig: [Sym2; 3],
    /// ½ tr(M dΣ/ds) per s.
    tr_mds: [f64; 3],
    /// Per (s, s′): G = dΣ_s M dΣ_s′ (for −hᵀ G h), precomputed.
    cross_g: [[Sym2; 3]; 3],
    /// Per (s, s′): ½ tr(M dΣ_s′ M dΣ_s).
    cross_tr: [[f64; 3]; 3],
    /// Second Σ-derivatives d²Σpix/ds ds′ and their ½tr(M ·) parts.
    d2sig: [[Sym2; 3]; 3],
    tr_md2s: [[f64; 3]; 3],
    /// Per s: Jᵀ M dΣ_s (for ∂²lnN/∂u∂s = −(Jᵀ M dΣ_s) h).
    ku: [[[f64; 2]; 2]; 3],
    /// Precombined quadratic-form matrix for the shape-shape lnN
    /// Hessian: `½ d²Σ_{ss′} − dΣ_s M dΣ_s′` — one quad form per
    /// (s, s′) at eval time instead of two.
    hq: [[Sym2; 3]; 3],
    /// Matching constant part: `cross_tr − tr_md2s` per (s, s′).
    hc: [[f64; 3]; 3],
}

fn invert(cov: &Cov2) -> (Sym2, f64) {
    let det = cov.det();
    assert!(det > 0.0, "degenerate covariance {cov:?}");
    let inv = Sym2 {
        xx: cov.yy / det,
        xy: -cov.xy / det,
        yy: cov.xx / det,
    };
    (inv, det)
}

fn mat2_mul(a: &[[f64; 2]; 2], b: &[[f64; 2]; 2]) -> [[f64; 2]; 2] {
    [
        [
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
        ],
        [
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        ],
    ]
}

fn sym_as_mat(s: &Sym2) -> [[f64; 2]; 2] {
    [[s.xx, s.xy], [s.xy, s.yy]]
}

/// Congruence J A Jᵀ of a symmetric sky-frame matrix into pixel frame.
fn congruence(a: &Sym2, j: &[[f64; 2]; 2]) -> Sym2 {
    let c = Cov2 {
        xx: a.xx,
        xy: a.xy,
        yy: a.yy,
    }
    .congruence(j);
    Sym2::from_cov(&c)
}

fn prepare_comp(
    weight: f64,
    dw_fd: f64,
    d2w_fd: f64,
    cov: Cov2,
    jac: &[[f64; 2]; 2],
    dsig: [Sym2; 3],
    d2sig: [[Sym2; 3]; 3],
) -> PreparedComp {
    let (m, det) = invert(&cov);
    let norm = 1.0 / (std::f64::consts::TAU * det.sqrt());
    let mm = sym_as_mat(&m);
    let jt = [[jac[0][0], jac[1][0]], [jac[0][1], jac[1][1]]];
    let jt_m = mat2_mul(&jt, &mm);
    let jt_m_j = mat2_mul(&jt_m, jac);
    let huu = [
        [-jt_m_j[0][0], -jt_m_j[0][1]],
        [-jt_m_j[1][0], -jt_m_j[1][1]],
    ];

    let mut tr_mds = [0.0; 3];
    let mut cross_g = [[Sym2::default(); 3]; 3];
    let mut cross_tr = [[0.0; 3]; 3];
    let mut tr_md2s = [[0.0; 3]; 3];
    let mut ku = [[[0.0; 2]; 2]; 3];
    for s in 0..3 {
        tr_mds[s] = 0.5 * m.trace_prod(&dsig[s]);
        let m_ds = mat2_mul(&mm, &sym_as_mat(&dsig[s]));
        ku[s] = mat2_mul(&jt, &m_ds);
        for s2 in 0..3 {
            // dΣ_s M dΣ_s2 (symmetric in the quad-form sense).
            let ds_m = mat2_mul(&sym_as_mat(&dsig[s]), &mm);
            let g = mat2_mul(&ds_m, &sym_as_mat(&dsig[s2]));
            // Symmetrize (exact up to rounding for the quad form).
            cross_g[s][s2] = Sym2 {
                xx: g[0][0],
                xy: 0.5 * (g[0][1] + g[1][0]),
                yy: g[1][1],
            };
            cross_tr[s][s2] = 0.5 * m.sandwich(&dsig[s2]).trace_prod(&dsig[s]);
            tr_md2s[s][s2] = 0.5 * m.trace_prod(&d2sig[s][s2]);
        }
    }
    let mut hq = [[Sym2::default(); 3]; 3];
    let mut hc = [[0.0; 3]; 3];
    for s in 0..3 {
        for s2 in 0..3 {
            hq[s][s2] = Sym2 {
                xx: 0.5 * d2sig[s][s2].xx - cross_g[s][s2].xx,
                xy: 0.5 * d2sig[s][s2].xy - cross_g[s][s2].xy,
                yy: 0.5 * d2sig[s][s2].yy - cross_g[s][s2].yy,
            };
            hc[s][s2] = cross_tr[s][s2] - tr_md2s[s][s2];
        }
    }
    PreparedComp {
        weight,
        dw_fd,
        d2w_fd,
        m,
        norm,
        huu,
        jt_m,
        dsig,
        tr_mds,
        cross_g,
        cross_tr,
        d2sig,
        tr_md2s,
        ku,
        hq,
        hc,
    }
}

/// Prepared star appearance: PSF mixture with position derivatives.
#[derive(Debug, Clone)]
pub struct PreparedStar {
    comps: Vec<PreparedComp>,
    /// Source center in pixel coordinates (anchor + J·u already applied).
    center: [f64; 2],
}

/// Prepared galaxy appearance: (profile ⊛ PSF) mixture with position,
/// mixing, and shape derivatives.
#[derive(Debug, Clone)]
pub struct PreparedGalaxy {
    comps: Vec<PreparedComp>,
    center: [f64; 2],
}

/// Shape inputs in unconstrained space.
#[derive(Debug, Clone, Copy)]
pub struct GalaxyGeo {
    pub fd_logit: f64,
    pub axis_logit: f64,
    pub angle: f64,
    pub ln_radius: f64,
}

/// Sky-frame profile covariance for unit-variance `v` plus its first
/// and second derivatives with respect to (axis_logit, angle,
/// ln_radius). Returns (Σ, dΣ[3], d²Σ[3][3]) in arcsec².
fn shape_cov_derivs(v: f64, geo: &GalaxyGeo) -> (Sym2, [Sym2; 3], [[Sym2; 3]; 3]) {
    let q = sigmoid(geo.axis_logit).clamp(1e-4, 1.0 - 1e-9);
    let (sin, cos) = geo.angle.sin_cos();
    let rho2 = (2.0 * geo.ln_radius).exp();
    let major = v * rho2;
    let minor = major * q * q;

    let c2 = cos * cos;
    let s2 = sin * sin;
    let sc = sin * cos;
    // Σ in terms of (major M, minor m): xx = M c² + m s², xy = (M−m)sc,
    // yy = M s² + m c².
    let sig = Sym2 {
        xx: major * c2 + minor * s2,
        xy: (major - minor) * sc,
        yy: major * s2 + minor * c2,
    };
    // Derivatives of `minor` wrt axis_logit: dq/dql = q(1−q).
    let dq = q * (1.0 - q);
    let dminor = 2.0 * minor * (1.0 - q); // = major·2q·dq
    let d2minor = 2.0 * ((dminor) * (1.0 - q) + minor * (-dq));
    // s = 0: axis_logit — only `minor` moves.
    let d_axis = Sym2 {
        xx: dminor * s2,
        xy: -dminor * sc,
        yy: dminor * c2,
    };
    let d2_axis = Sym2 {
        xx: d2minor * s2,
        xy: -d2minor * sc,
        yy: d2minor * c2,
    };
    // s = 1: angle.
    let dxy_dth = (major - minor) * (c2 - s2);
    let d_angle = Sym2 {
        xx: -2.0 * sig.xy,
        xy: dxy_dth,
        yy: 2.0 * sig.xy,
    };
    let d2_angle = Sym2 {
        xx: -2.0 * dxy_dth,
        xy: -4.0 * sig.xy,
        yy: 2.0 * dxy_dth,
    };
    // s = 2: ln_radius — everything scales as e^{2lr}.
    let d_lr = sig.scale(2.0);
    let d2_lr = sig.scale(4.0);
    // Crosses.
    let d_axis_angle = Sym2 {
        // ∂(∂Σ/∂θ)/∂ql: xy = (M−m)sc → ∂xy/∂ql = −dminor·sc
        xx: 2.0 * dminor * sc,
        xy: -dminor * (c2 - s2),
        yy: -2.0 * dminor * sc,
    };
    let d_axis_lr = d_axis.scale(2.0);
    let d_angle_lr = d_angle.scale(2.0);

    let d1 = [d_axis, d_angle, d_lr];
    let d2 = [
        [d2_axis, d_axis_angle, d_axis_lr],
        [d_axis_angle, d2_angle, d_angle_lr],
        [d_axis_lr, d_angle_lr, d2_lr],
    ];
    (sig, d1, d2)
}

impl Default for PreparedStar {
    /// An empty appearance; fill with [`PreparedStar::prepare`].
    fn default() -> Self {
        PreparedStar {
            comps: Vec::new(),
            center: [0.0; 2],
        }
    }
}

impl PreparedStar {
    /// Prepare a star appearance: `center0` is the anchor position in
    /// pixels, `u_arcsec` the current offset, `jac` maps arcsec → px.
    pub fn new(psf: &Psf, center0: [f64; 2], u_arcsec: [f64; 2], jac: &[[f64; 2]; 2]) -> Self {
        let mut out = PreparedStar::default();
        out.prepare(psf, center0, u_arcsec, jac);
        out
    }

    /// Refill in place, reusing the component buffer's allocation
    /// (the per-evaluation path of the zero-allocation hot loop).
    pub fn prepare(
        &mut self,
        psf: &Psf,
        center0: [f64; 2],
        u_arcsec: [f64; 2],
        jac: &[[f64; 2]; 2],
    ) {
        self.center = apply_offset(center0, u_arcsec, jac);
        self.comps.clear();
        self.comps.extend(psf.components.iter().map(|c| {
            prepare_comp(
                c.weight,
                0.0,
                0.0,
                Cov2::isotropic(c.sigma_px * c.sigma_px),
                jac,
                [Sym2::default(); 3],
                [[Sym2::default(); 3]; 3],
            )
        }));
    }

    /// Evaluate value/gradient/Hessian at a pixel center.
    pub fn eval(&self, px: f64, py: f64) -> GeoEval {
        eval_prepared(&self.comps, self.center, px, py, false)
    }

    /// The frozen pre-refactor kernel (parity/benchmark reference).
    pub fn eval_reference(&self, px: f64, py: f64) -> GeoEval {
        eval_prepared_reference(&self.comps, self.center, px, py, false)
    }

    /// Value-only evaluation (trust-region trial points): no derivative
    /// assembly, roughly 4× cheaper per pixel.
    pub fn eval_value(&self, px: f64, py: f64) -> f64 {
        eval_value_prepared(&self.comps, self.center, px, py)
    }
}

impl Default for PreparedGalaxy {
    /// An empty appearance; fill with [`PreparedGalaxy::prepare`].
    fn default() -> Self {
        PreparedGalaxy {
            comps: Vec::new(),
            center: [0.0; 2],
        }
    }
}

impl PreparedGalaxy {
    /// Prepare a galaxy appearance for the current shape parameters.
    pub fn new(
        psf: &Psf,
        geo: &GalaxyGeo,
        center0: [f64; 2],
        u_arcsec: [f64; 2],
        jac: &[[f64; 2]; 2],
    ) -> Self {
        let mut out = PreparedGalaxy::default();
        out.prepare(psf, geo, center0, u_arcsec, jac);
        out
    }

    /// Refill in place, reusing the component buffer's allocation
    /// (the per-evaluation path of the zero-allocation hot loop).
    pub fn prepare(
        &mut self,
        psf: &Psf,
        geo: &GalaxyGeo,
        center0: [f64; 2],
        u_arcsec: [f64; 2],
        jac: &[[f64; 2]; 2],
    ) {
        let center = apply_offset(center0, u_arcsec, jac);
        let fd = sigmoid(geo.fd_logit);
        let dfd = fd * (1.0 - fd);
        let d2fd = dfd * (1.0 - 2.0 * fd);
        let dev = dev_mixture();
        let exp = exp_mixture();
        let comps = &mut self.comps;
        comps.clear();
        comps.reserve((dev.vars.len() + exp.vars.len()) * psf.components.len());
        // (profile weight, ∂/∂fd sign, unit variance)
        let profiles = dev
            .weights
            .iter()
            .zip(&dev.vars)
            .map(|(&w, &v)| (w, true, v))
            .chain(
                exp.weights
                    .iter()
                    .zip(&exp.vars)
                    .map(|(&w, &v)| (w, false, v)),
            );
        for (wprof, is_dev, v) in profiles {
            let (sig_sky, d1_sky, d2_sky) = shape_cov_derivs(v, geo);
            let sig_pix = congruence(&sig_sky, jac);
            let d1_pix = [
                congruence(&d1_sky[0], jac),
                congruence(&d1_sky[1], jac),
                congruence(&d1_sky[2], jac),
            ];
            let mut d2_pix = [[Sym2::default(); 3]; 3];
            for s in 0..3 {
                for s2 in 0..3 {
                    d2_pix[s][s2] = congruence(&d2_sky[s][s2], jac);
                }
            }
            let (mix_w, mix_dw, mix_d2w) = if is_dev {
                (fd * wprof, dfd * wprof, d2fd * wprof)
            } else {
                ((1.0 - fd) * wprof, -dfd * wprof, -d2fd * wprof)
            };
            for pc in &psf.components {
                let cov = Cov2 {
                    xx: sig_pix.xx + pc.sigma_px * pc.sigma_px,
                    xy: sig_pix.xy,
                    yy: sig_pix.yy + pc.sigma_px * pc.sigma_px,
                };
                comps.push(prepare_comp(
                    mix_w * pc.weight,
                    mix_dw * pc.weight,
                    mix_d2w * pc.weight,
                    cov,
                    jac,
                    d1_pix,
                    d2_pix,
                ));
            }
        }
        self.center = center;
    }

    /// Evaluate value/gradient/Hessian at a pixel center.
    pub fn eval(&self, px: f64, py: f64) -> GeoEval {
        eval_prepared(&self.comps, self.center, px, py, true)
    }

    /// The frozen pre-refactor kernel (parity/benchmark reference).
    pub fn eval_reference(&self, px: f64, py: f64) -> GeoEval {
        eval_prepared_reference(&self.comps, self.center, px, py, true)
    }

    /// Value-only evaluation (trust-region trial points).
    pub fn eval_value(&self, px: f64, py: f64) -> f64 {
        eval_value_prepared(&self.comps, self.center, px, py)
    }
}

fn apply_offset(center0: [f64; 2], u: [f64; 2], jac: &[[f64; 2]; 2]) -> [f64; 2] {
    [
        center0[0] + jac[0][0] * u[0] + jac[0][1] * u[1],
        center0[1] + jac[1][0] * u[0] + jac[1][1] * u[1],
    ]
}

/// Value-only per-pixel kernel: Σ w·N with no derivative assembly.
fn eval_value_prepared(comps: &[PreparedComp], center: [f64; 2], px: f64, py: f64) -> f64 {
    let delta = [px - center[0], py - center[1]];
    let mut total = 0.0;
    for c in comps {
        let h = c.m.mv(delta);
        let qf = delta[0] * h[0] + delta[1] * h[1];
        if qf > 100.0 {
            continue;
        }
        total += c.weight * c.norm * (-0.5 * qf).exp();
    }
    total
}

/// The shared per-pixel kernel. Slots: [u0, u1, fd, axis, angle, lr].
///
/// Exploits two structural facts the reference kernel leaves on the
/// table: the lnN Hessian is symmetric (only the lower triangle is
/// accumulated per component, mirrored once per pixel), and the
/// fd-logit slot (2) carries no lnN derivative at all — it enters
/// only through the mixing-weight terms — so the main accumulation
/// skips its row and column entirely.
fn eval_prepared(
    comps: &[PreparedComp],
    center: [f64; 2],
    px: f64,
    py: f64,
    with_shape: bool,
) -> GeoEval {
    let mut out = GeoEval::zero();
    let delta = [px - center[0], py - center[1]];
    for c in comps {
        let h = c.m.mv(delta);
        let qf = delta[0] * h[0] + delta[1] * h[1];
        if qf > 100.0 {
            continue; // < e⁻⁵⁰ of peak: numerically zero
        }
        let n = c.norm * (-0.5 * qf).exp();
        let wn = c.weight * n;

        // lnN gradient: gu = Jᵀ h; gs per shape.
        let g0 = c.jt_m[0][0] * delta[0] + c.jt_m[0][1] * delta[1];
        let g1 = c.jt_m[1][0] * delta[0] + c.jt_m[1][1] * delta[1];
        out.val += wn;
        out.grad[0] += wn * g0;
        out.grad[1] += wn * g1;

        // u-block (lower triangle): wn·(g gᵀ + ∂²lnN/∂u²).
        out.hess[0][0] += wn * (g0 * g0 + c.huu[0][0]);
        out.hess[1][0] += wn * (g1 * g0 + c.huu[1][0]);
        out.hess[1][1] += wn * (g1 * g1 + c.huu[1][1]);
        if !with_shape {
            continue;
        }

        let mut gs = [0.0; 3];
        for s in 0..3 {
            gs[s] = 0.5 * c.dsig[s].quad(h) - c.tr_mds[s];
            out.grad[3 + s] += wn * gs[s];
        }
        for s in 0..3 {
            // ∂²lnN/∂u∂s = −(Jᵀ M dΣ_s) h; rows 3+s, cols 0..1.
            let v0 = -(c.ku[s][0][0] * h[0] + c.ku[s][0][1] * h[1]);
            let v1 = -(c.ku[s][1][0] * h[0] + c.ku[s][1][1] * h[1]);
            out.hess[3 + s][0] += wn * (gs[s] * g0 + v0);
            out.hess[3 + s][1] += wn * (gs[s] * g1 + v1);
            for s2 in 0..=s {
                // One precombined quad form: ½ hᵀd²Σh − hᵀ(dΣMdΣ′)h.
                let second = c.hq[s][s2].quad(h) + c.hc[s][s2];
                out.hess[3 + s][3 + s2] += wn * (gs[s] * gs[s2] + second);
            }
        }

        // Mixing-weight (fd) terms: row/col 2.
        let dwn = c.dw_fd * n;
        out.grad[2] += dwn;
        out.hess[2][2] += c.d2w_fd * n;
        out.hess[2][0] += dwn * g0;
        out.hess[2][1] += dwn * g1;
        for s in 0..3 {
            out.hess[3 + s][2] += dwn * gs[s];
        }
    }
    // Mirror the accumulated lower triangle once per pixel.
    for i in 0..GEO {
        for j in 0..i {
            out.hess[j][i] = out.hess[i][j];
        }
    }
    out
}

/// The pre-refactor per-pixel kernel, frozen verbatim as the parity
/// and benchmark reference for the symmetry-aware [`eval_prepared`].
/// Reached through [`PreparedStar::eval_reference`] /
/// [`PreparedGalaxy::eval_reference`]; not for production use.
fn eval_prepared_reference(
    comps: &[PreparedComp],
    center: [f64; 2],
    px: f64,
    py: f64,
    with_shape: bool,
) -> GeoEval {
    let mut out = GeoEval::zero();
    let delta = [px - center[0], py - center[1]];
    for c in comps {
        let h = c.m.mv(delta);
        let qf = delta[0] * h[0] + delta[1] * h[1];
        if qf > 100.0 {
            continue; // < e⁻⁵⁰ of peak: numerically zero
        }
        let n = c.norm * (-0.5 * qf).exp();
        let wn = c.weight * n;

        // lnN gradient: gu = Jᵀ h; gs per shape.
        let gu = [
            c.jt_m[0][0] * delta[0] + c.jt_m[0][1] * delta[1],
            c.jt_m[1][0] * delta[0] + c.jt_m[1][1] * delta[1],
        ];
        let mut g = [0.0; GEO];
        g[0] = gu[0];
        g[1] = gu[1];
        if with_shape {
            for s in 0..3 {
                g[3 + s] = 0.5 * c.dsig[s].quad(h) - c.tr_mds[s];
            }
        }

        // lnN Hessian.
        let mut hl = [[0.0; GEO]; GEO];
        hl[0][0] = c.huu[0][0];
        hl[0][1] = c.huu[0][1];
        hl[1][0] = c.huu[1][0];
        hl[1][1] = c.huu[1][1];
        if with_shape {
            for s in 0..3 {
                // ∂²lnN/∂u∂s = −(Jᵀ M dΣ_s) h
                let v = [
                    -(c.ku[s][0][0] * h[0] + c.ku[s][0][1] * h[1]),
                    -(c.ku[s][1][0] * h[0] + c.ku[s][1][1] * h[1]),
                ];
                hl[0][3 + s] = v[0];
                hl[3 + s][0] = v[0];
                hl[1][3 + s] = v[1];
                hl[3 + s][1] = v[1];
                for s2 in s..3 {
                    let second = -c.cross_g[s][s2].quad(h)
                        + c.cross_tr[s][s2]
                        + 0.5 * c.d2sig[s][s2].quad(h)
                        - c.tr_md2s[s][s2];
                    hl[3 + s][3 + s2] = second;
                    hl[3 + s2][3 + s] = second;
                }
            }
        }

        // Assemble N-level derivatives: ∇(W·N) over all slots including
        // the mixing weight derivative in slot 2 (fd).
        out.val += wn;
        for i in 0..GEO {
            out.grad[i] += wn * g[i];
        }
        for i in 0..GEO {
            for j in 0..GEO {
                out.hess[i][j] += wn * (g[i] * g[j] + hl[i][j]);
            }
        }
        if with_shape {
            let dwn = c.dw_fd * n;
            out.grad[2] += dwn;
            out.hess[2][2] += c.d2w_fd * n;
            for i in 0..GEO {
                if i == 2 {
                    continue;
                }
                out.hess[2][i] += dwn * g[i];
                out.hess[i][2] += dwn * g[i];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const JAC: [[f64; 2]; 2] = [[0.7, 0.05], [-0.03, 0.71]]; // px per arcsec

    fn fd_eval_star(u: [f64; 2], px: f64, py: f64) -> f64 {
        PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], u, &JAC)
            .eval(px, py)
            .val
    }

    fn geo(fd: f64, ql: f64, th: f64, lr: f64) -> GalaxyGeo {
        GalaxyGeo {
            fd_logit: fd,
            axis_logit: ql,
            angle: th,
            ln_radius: lr,
        }
    }

    fn fd_eval_gal(g6: [f64; 6], px: f64, py: f64) -> f64 {
        PreparedGalaxy::new(
            &Psf::core_halo(1.3),
            &geo(g6[2], g6[3], g6[4], g6[5]),
            [10.0, 12.0],
            [g6[0], g6[1]],
            &JAC,
        )
        .eval(px, py)
        .val
    }

    #[test]
    fn star_matches_survey_gmm() {
        let psf = Psf::core_halo(1.3);
        let prep = PreparedStar::new(&psf, [10.0, 12.0], [0.0, 0.0], &JAC);
        let gmm = psf.to_gmm().shifted(10.0, 12.0);
        for &(x, y) in &[(10.0, 12.0), (11.5, 12.5), (8.0, 14.0)] {
            let a = prep.eval(x, y).val;
            let b = gmm.eval(x, y);
            assert!((a - b).abs() < 1e-12, "at ({x},{y}): {a} vs {b}");
        }
    }

    #[test]
    fn star_position_gradient_matches_fd() {
        let h = 1e-5;
        let (px, py) = (11.3, 12.9);
        let e =
            PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], [0.2, -0.1], &JAC).eval(px, py);
        for k in 0..2 {
            let mut up = [0.2, -0.1];
            let mut um = up;
            up[k] += h;
            um[k] -= h;
            let fd = (fd_eval_star(up, px, py) - fd_eval_star(um, px, py)) / (2.0 * h);
            assert!(
                (e.grad[k] - fd).abs() < 1e-6 * (1.0 + fd.abs()),
                "grad[{k}]: {} vs fd {}",
                e.grad[k],
                fd
            );
        }
    }

    #[test]
    fn star_position_hessian_matches_fd() {
        let h = 1e-4;
        let (px, py) = (11.3, 12.9);
        let u0 = [0.2, -0.1];
        let grad_at = |u: [f64; 2]| {
            PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], u, &JAC)
                .eval(px, py)
                .grad
        };
        let e = PreparedStar::new(&Psf::core_halo(1.3), [10.0, 12.0], u0, &JAC).eval(px, py);
        for k in 0..2 {
            let mut up = u0;
            let mut um = u0;
            up[k] += h;
            um[k] -= h;
            let gp = grad_at(up);
            let gm = grad_at(um);
            for l in 0..2 {
                let fd = (gp[l] - gm[l]) / (2.0 * h);
                assert!(
                    (e.hess[l][k] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "hess[{l}][{k}]: {} vs fd {}",
                    e.hess[l][k],
                    fd
                );
            }
        }
    }

    #[test]
    fn galaxy_gradient_matches_fd_all_slots() {
        let h = 1e-5;
        let (px, py) = (12.0, 13.5);
        let base = [0.1, -0.2, 0.3, 0.5, 0.8, 0.4];
        let prep = PreparedGalaxy::new(
            &Psf::core_halo(1.3),
            &geo(base[2], base[3], base[4], base[5]),
            [10.0, 12.0],
            [base[0], base[1]],
            &JAC,
        );
        let e = prep.eval(px, py);
        for k in 0..6 {
            let mut up = base;
            let mut um = base;
            up[k] += h;
            um[k] -= h;
            let fd = (fd_eval_gal(up, px, py) - fd_eval_gal(um, px, py)) / (2.0 * h);
            assert!(
                (e.grad[k] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "grad[{k}]: {} vs fd {}",
                e.grad[k],
                fd
            );
        }
    }

    #[test]
    fn galaxy_hessian_matches_fd_all_slots() {
        let h = 1e-4;
        let (px, py) = (12.0, 13.5);
        let base = [0.1, -0.2, 0.3, 0.5, 0.8, 0.4];
        let grad_at = |g6: [f64; 6]| {
            PreparedGalaxy::new(
                &Psf::core_halo(1.3),
                &geo(g6[2], g6[3], g6[4], g6[5]),
                [10.0, 12.0],
                [g6[0], g6[1]],
                &JAC,
            )
            .eval(px, py)
            .grad
        };
        let e = PreparedGalaxy::new(
            &Psf::core_halo(1.3),
            &geo(base[2], base[3], base[4], base[5]),
            [10.0, 12.0],
            [base[0], base[1]],
            &JAC,
        )
        .eval(px, py);
        for k in 0..6 {
            let mut up = base;
            let mut um = base;
            up[k] += h;
            um[k] -= h;
            let gp = grad_at(up);
            let gm = grad_at(um);
            for l in 0..6 {
                let fd = (gp[l] - gm[l]) / (2.0 * h);
                let scale = 1.0 + fd.abs().max(e.hess[l][k].abs());
                assert!(
                    (e.hess[l][k] - fd).abs() < 5e-4 * scale,
                    "hess[{l}][{k}]: {} vs fd {}",
                    e.hess[l][k],
                    fd
                );
            }
        }
    }

    #[test]
    fn galaxy_flux_integrates_to_one() {
        // Sum over a wide pixel grid ≈ total flux = 1 (unit-flux G).
        let prep = PreparedGalaxy::new(
            &Psf::single(1.2),
            &geo(0.0, 0.8, 0.3, 0.0), // r_e = 1 arcsec ≈ 0.7 px here
            [40.0, 40.0],
            [0.0, 0.0],
            &JAC,
        );
        let mut total = 0.0;
        for y in 0..80 {
            for x in 0..80 {
                total += prep.eval(x as f64 + 0.5, y as f64 + 0.5).val;
            }
        }
        assert!((total - 1.0).abs() < 0.02, "total {total}");
    }

    #[test]
    fn hessian_is_symmetric() {
        let prep = PreparedGalaxy::new(
            &Psf::core_halo(1.1),
            &geo(-0.4, 0.9, 1.2, 0.6),
            [10.0, 12.0],
            [0.3, 0.1],
            &JAC,
        );
        let e = prep.eval(11.0, 13.0);
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (e.hess[i][j] - e.hess[j][i]).abs() < 1e-12,
                    "asym at ({i},{j})"
                );
            }
        }
    }
}
