//! The ELBO written once, generically over [`celeste_ad::Real`].
//!
//! This is an *independent re-derivation* of the objective in
//! [`crate::likelihood`] + [`crate::kl`], written as straight-line
//! scalar code over a generic `Real`. Instantiated at:
//!
//! * `f64` — cross-checks the hand-coded value path;
//! * [`celeste_ad::Dual`] — exact gradients to verify the hand-coded
//!   gradient (tests);
//! * [`celeste_ad::Dual2`] — exact Hessian entries to verify the
//!   hand-coded Hessian (tests);
//! * [`celeste_ad::Counting`] — FLOP audit per active-pixel visit, the
//!   stand-in for the paper's Intel SDE measurement (§VI-B).
//!
//! Keeping this path separate from the optimized kernels mirrors the
//! paper's own practice of using AD "where exploiting the sparsity of
//! the Hessian is not required" (§V).

use crate::kl::ModelPriors;
use crate::likelihood::ImageBlock;
use crate::params::{ids, K_COLOR, NUM_PARAMS};
use celeste_ad::Real;
use celeste_survey::bands::NUM_COLORS;
use celeste_survey::galaxy::{dev_mixture, exp_mixture};

/// Full ELBO (likelihood − KL) at `params`, generically.
pub fn elbo<T: Real>(params: &[T; NUM_PARAMS], blocks: &[ImageBlock], priors: &ModelPriors) -> T {
    likelihood::<T>(params, blocks) - kl::<T>(params, priors)
}

/// Likelihood part only.
pub fn likelihood<T: Real>(params: &[T; NUM_PARAMS], blocks: &[ImageBlock]) -> T {
    let mut total = T::zero();
    let w = type_weights(params);
    for block in blocks {
        total += block_likelihood(params, block, &w);
    }
    total
}

fn type_weights<T: Real>(params: &[T; NUM_PARAMS]) -> [T; 2] {
    let d = params[ids::A[0]] - params[ids::A[1]];
    let w0 = d.sigmoid();
    [w0, T::one() - w0]
}

/// ln ℓ_b moments (m, v) for type t in `band`.
fn flux_mv<T: Real>(params: &[T; NUM_PARAMS], t: usize, band: usize) -> (T, T) {
    let coef = &crate::params::BAND_COLOR_COEF[band];
    let mut m = params[ids::r_mu(t)];
    let mut v = (params[ids::r_lsd(t)] * T::from_f64(2.0)).exp();
    for i in 0..NUM_COLORS {
        if coef[i] != 0.0 {
            m += params[ids::c_mean(t, i)] * T::from_f64(coef[i]);
            v += params[ids::c_lvar(t, i)].exp() * T::from_f64(coef[i] * coef[i]);
        }
    }
    (m, v)
}

/// One bivariate normal density with generic covariance.
fn bvn_density<T: Real>(dx: T, dy: T, cxx: T, cxy: T, cyy: T) -> T {
    let det = cxx * cyy - cxy * cxy;
    let inv_det = T::one() / det;
    let q = (cyy * dx * dx - T::from_f64(2.0) * cxy * dx * dy + cxx * dy * dy) * inv_det;
    (q * T::from_f64(-0.5)).exp() * inv_det.sqrt() * T::from_f64(1.0 / std::f64::consts::TAU)
}

/// Unit-flux star appearance at a pixel.
fn star_g<T: Real>(params: &[T; NUM_PARAMS], block: &ImageBlock, px: f64, py: f64) -> T {
    let (dx, dy) = pixel_delta(params, block, px, py);
    let mut g = T::zero();
    for c in &block.psf.components {
        let var = T::from_f64(c.sigma_px * c.sigma_px);
        g += bvn_density(dx, dy, var, T::zero(), var) * T::from_f64(c.weight);
    }
    g
}

fn pixel_delta<T: Real>(params: &[T; NUM_PARAMS], block: &ImageBlock, px: f64, py: f64) -> (T, T) {
    let u0 = params[ids::U[0]];
    let u1 = params[ids::U[1]];
    let j = &block.jac;
    let cx = T::from_f64(block.center0[0]) + u0 * T::from_f64(j[0][0]) + u1 * T::from_f64(j[0][1]);
    let cy = T::from_f64(block.center0[1]) + u0 * T::from_f64(j[1][0]) + u1 * T::from_f64(j[1][1]);
    (T::from_f64(px) - cx, T::from_f64(py) - cy)
}

/// Unit-flux galaxy appearance at a pixel.
fn galaxy_g<T: Real>(params: &[T; NUM_PARAMS], block: &ImageBlock, px: f64, py: f64) -> T {
    let (dx, dy) = pixel_delta(params, block, px, py);
    let fd = params[ids::FRAC_DEV].sigmoid();
    let q = params[ids::AXIS].sigmoid();
    let (sin, cos) = (params[ids::ANGLE].sin(), params[ids::ANGLE].cos());
    let rho2 = (params[ids::LN_RADIUS] * T::from_f64(2.0)).exp();
    let j = &block.jac;

    let mut g = T::zero();
    let dev = dev_mixture();
    let exp = exp_mixture();
    let profiles = dev
        .weights
        .iter()
        .zip(&dev.vars)
        .map(|(&w, &v)| (w, v, true))
        .chain(
            exp.weights
                .iter()
                .zip(&exp.vars)
                .map(|(&w, &v)| (w, v, false)),
        );
    for (wp, v, is_dev) in profiles {
        let mix = if is_dev {
            fd * T::from_f64(wp)
        } else {
            (T::one() - fd) * T::from_f64(wp)
        };
        // Sky covariance: R diag(major, minor) Rᵀ.
        let major = rho2 * T::from_f64(v);
        let minor = major * q * q;
        let c2 = cos * cos;
        let s2 = sin * sin;
        let sc = sin * cos;
        let sky_xx = major * c2 + minor * s2;
        let sky_xy = (major - minor) * sc;
        let sky_yy = major * s2 + minor * c2;
        // Congruence into pixel frame.
        let (a, b, c, d) = (
            T::from_f64(j[0][0]),
            T::from_f64(j[0][1]),
            T::from_f64(j[1][0]),
            T::from_f64(j[1][1]),
        );
        let pix_xx = a * a * sky_xx + T::from_f64(2.0) * a * b * sky_xy + b * b * sky_yy;
        let pix_xy = a * c * sky_xx + (a * d + b * c) * sky_xy + b * d * sky_yy;
        let pix_yy = c * c * sky_xx + T::from_f64(2.0) * c * d * sky_xy + d * d * sky_yy;
        for pc in &block.psf.components {
            let pv = T::from_f64(pc.sigma_px * pc.sigma_px);
            let dens = bvn_density(dx, dy, pix_xx + pv, pix_xy, pix_yy + pv);
            g += dens * mix * T::from_f64(pc.weight);
        }
    }
    g
}

fn block_likelihood<T: Real>(params: &[T; NUM_PARAMS], block: &ImageBlock, w: &[T; 2]) -> T {
    let iota = T::from_f64(block.iota);
    // Band flux moments per type.
    let mut l = [T::zero(); 2];
    let mut s2m = [T::zero(); 2];
    for t in 0..2 {
        let (m, v) = flux_mv(params, t, block.band);
        l[t] = (m + v * T::from_f64(0.5)).exp();
        s2m[t] = (m * T::from_f64(2.0) + v * T::from_f64(2.0)).exp();
    }
    let mut total = T::zero();
    for pix in &block.pixels {
        let g = [
            star_g(params, block, pix.px, pix.py),
            galaxy_g(params, block, pix.px, pix.py),
        ];
        let mut s = T::zero();
        let mut qq = T::zero();
        for t in 0..2 {
            s += iota * w[t] * l[t] * g[t];
            qq += iota * iota * w[t] * s2m[t] * g[t] * g[t];
        }
        let e = T::from_f64(pix.eps) + s;
        let v = qq - s * s;
        let e2 = e * e;
        total += T::from_f64(pix.x) * (e.ln() - v / (e2 * T::from_f64(2.0))) - e;
    }
    total
}

/// KL part.
pub fn kl<T: Real>(params: &[T; NUM_PARAMS], priors: &ModelPriors) -> T {
    let w = type_weights(params);
    let mut total = T::zero();

    // Type indicator.
    let p0 = priors.survey.star_prob.clamp(1e-9, 1.0 - 1e-9);
    total += w[0] * (w[0].ln() - T::from_f64(p0.ln()))
        + w[1] * (w[1].ln() - T::from_f64((1.0 - p0).ln()));

    // Gaussian KL helper.
    fn gkl<T: Real>(m: T, lsd: T, pm: f64, ps: f64) -> T {
        let var = (lsd * T::from_f64(2.0)).exp();
        let d = m - T::from_f64(pm);
        T::from_f64(ps.ln()) - lsd + (var + d * d) * T::from_f64(0.5 / (ps * ps)) - T::from_f64(0.5)
    }

    let floor = T::from_f64(crate::kl::KL_WEIGHT_FLOOR);
    let wf = [w[0] + floor, w[1] + floor];
    for t in 0..2 {
        let fp = &priors.survey.flux[t];
        total += wf[t] * gkl(params[ids::r_mu(t)], params[ids::r_lsd(t)], fp.mu, fp.sigma);

        // Colors: softmax κ, then Σ_k κ_k (KL_k + ln κ_k − ln π_k).
        let mut kap = [T::zero(); K_COLOR];
        let mut z = T::zero();
        for k in 0..K_COLOR {
            kap[k] = params[ids::kappa(t, k)].exp();
            z += kap[k];
        }
        let mut color_term = T::zero();
        for k in 0..K_COLOR {
            let kk = kap[k] / z;
            let comp = &priors.survey.color[t].components[k];
            let mut klk = T::zero();
            for i in 0..NUM_COLORS {
                let c = params[ids::c_mean(t, i)];
                let lv = params[ids::c_lvar(t, i)];
                let var = lv.exp();
                let pv = comp.var[i].max(1e-8);
                let d = c - T::from_f64(comp.mean[i]);
                klk += T::from_f64(0.5 * pv.ln()) - lv * T::from_f64(0.5)
                    + (var + d * d) * T::from_f64(0.5 / pv)
                    - T::from_f64(0.5);
            }
            color_term += kk * (klk + kk.ln() - T::from_f64(comp.weight.max(1e-12).ln()));
        }
        total += wf[t] * color_term;
    }

    // Shape (galaxy-weighted).
    let shape_priors = [
        (
            priors.survey.shape.frac_dev_logit_mu,
            priors.survey.shape.frac_dev_logit_sigma,
        ),
        (
            priors.survey.shape.axis_ratio_logit_mu,
            priors.survey.shape.axis_ratio_logit_sigma,
        ),
        (0.0, priors.angle_prior_sd),
        (
            priors.survey.shape.radius_ln_mu,
            priors.survey.shape.radius_ln_sigma,
        ),
    ];
    for j in 0..4 {
        let (pm, ps) = shape_priors[j];
        total += wf[1] * gkl(params[ids::SHAPE[j]], params[ids::SHAPE_LSD[j]], pm, ps);
    }

    // Position (unweighted, anchored at init).
    for j in 0..2 {
        total += gkl(
            params[ids::U[j]],
            params[ids::U_LSD[j]],
            0.0,
            priors.u_prior_sd_arcsec,
        );
    }
    total
}

/// Convenience: lift an `f64` parameter vector into any `Real`.
pub fn lift<T: Real>(params: &[f64; NUM_PARAMS]) -> [T; NUM_PARAMS] {
    std::array::from_fn(|i| T::from_f64(params[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::{add_likelihood, likelihood_value, ActivePixel};
    use celeste_linalg::Mat;
    use celeste_survey::psf::Psf;

    fn test_block() -> ImageBlock {
        let mut pixels = Vec::new();
        for y in 0..7 {
            for x in 0..7 {
                let dx = x as f64 - 3.0;
                let dy = y as f64 - 3.0;
                pixels.push(ActivePixel {
                    px: 20.0 + dx,
                    py: 21.0 + dy,
                    x: (120.0 + 500.0 * (-0.4 * (dx * dx + dy * dy)).exp()).round(),
                    eps: 120.0,
                });
            }
        }
        ImageBlock {
            band: 1,
            iota: 250.0,
            jac: [[0.68, 0.03], [-0.02, 0.72]],
            center0: [20.0, 21.0],
            psf: std::sync::Arc::new(Psf::core_halo(1.2)),
            pixels,
        }
    }

    fn test_params() -> [f64; NUM_PARAMS] {
        use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
        use celeste_survey::skygeom::SkyCoord;
        let entry = CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.0, 0.0),
            source_type: SourceType::Galaxy,
            flux_r_nmgy: 3.0,
            colors: [0.5, 0.2, 0.15, 0.1],
            shape: GalaxyShape {
                frac_dev: 0.45,
                axis_ratio: 0.65,
                angle_rad: 0.7,
                radius_arcsec: 1.6,
            },
        };
        let mut sp = crate::params::SourceParams::init_from_entry(&entry);
        for (i, p) in sp.params.iter_mut().enumerate() {
            *p += 0.03 * ((i * 5 % 11) as f64 - 5.0) / 5.0;
        }
        sp.params
    }

    #[test]
    fn generic_f64_matches_hand_coded_likelihood() {
        let p = test_params();
        let blocks = vec![test_block()];
        let generic = likelihood::<f64>(&p, &blocks);
        let hand = likelihood_value(&p, &blocks);
        assert!(
            (generic - hand).abs() < 1e-8 * (1.0 + hand.abs()),
            "generic {generic} vs hand {hand}"
        );
    }

    #[test]
    fn generic_f64_matches_hand_coded_kl() {
        let p = test_params();
        let priors = ModelPriors::new(celeste_survey::Priors::sdss_default());
        let generic = kl::<f64>(&p, &priors);
        let hand = crate::kl::kl_value(&p, &priors);
        assert!(
            (generic - hand).abs() < 1e-9 * (1.0 + hand.abs()),
            "generic {generic} vs hand {hand}"
        );
    }

    #[test]
    fn dual_gradient_matches_hand_coded() {
        let p = test_params();
        let blocks = vec![test_block()];
        let priors = ModelPriors::new(celeste_survey::Priors::sdss_default());

        // Hand-coded gradient of the full ELBO.
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let mut kl_grad = [0.0; NUM_PARAMS];
        let mut kl_hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        crate::kl::add_kl(&p, &priors, &mut kl_grad, &mut kl_hess);

        // AD gradient through the generic path.
        let ad = celeste_ad::gradient::<NUM_PARAMS>(
            |x| {
                let arr: [celeste_ad::Dual<NUM_PARAMS>; NUM_PARAMS] = std::array::from_fn(|i| x[i]);
                elbo(&arr, &blocks, &priors)
            },
            &p,
        );
        for i in 0..NUM_PARAMS {
            let hand = grad[i] - kl_grad[i];
            assert!(
                (ad[i] - hand).abs() < 1e-6 * (1.0 + hand.abs()),
                "param {i}: AD {} vs hand {hand}",
                ad[i]
            );
        }
    }

    #[test]
    fn hyperdual_hessian_matches_hand_coded_sample() {
        let p = test_params();
        let blocks = vec![test_block()];
        let priors = ModelPriors::new(celeste_survey::Priors::sdss_default());

        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let mut kl_grad = [0.0; NUM_PARAMS];
        let mut kl_hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        crate::kl::add_kl(&p, &priors, &mut kl_grad, &mut kl_hess);

        let f = |x: &[celeste_ad::Dual2]| {
            let arr: [celeste_ad::Dual2; NUM_PARAMS] = std::array::from_fn(|i| x[i]);
            elbo(&arr, &blocks, &priors)
        };
        // Spot-check a battery of structurally distinct entries.
        let idx = [
            ids::U[0],
            ids::A[0],
            ids::r_mu(0),
            ids::r_lsd(1),
            ids::c_mean(1, 2),
            ids::c_lvar(0, 3),
            ids::kappa(0, 1),
            ids::FRAC_DEV,
            ids::AXIS,
            ids::ANGLE,
            ids::LN_RADIUS,
            ids::SHAPE_LSD[2],
            ids::U_LSD[0],
        ];
        for &i in &idx {
            for &j in &idx {
                let mut v = vec![0.0; NUM_PARAMS];
                let mut u = vec![0.0; NUM_PARAMS];
                v[i] = 1.0;
                u[j] = 1.0;
                let ad = celeste_ad::hessian_bilinear(f, &p, &v, &u);
                let hand = hess[(i, j)] - kl_hess[(i, j)];
                assert!(
                    (ad - hand).abs() < 1e-5 * (1.0 + hand.abs()),
                    "H[{i}][{j}]: AD {ad} vs hand {hand}"
                );
            }
        }
    }

    #[test]
    fn counting_instantiation_audits_flops() {
        let p = test_params();
        let blocks = vec![test_block()];
        celeste_ad::reset_op_count();
        let lifted: [celeste_ad::Counting; NUM_PARAMS] = lift(&p);
        let _ = likelihood(&lifted, &blocks);
        let ops = celeste_ad::op_count();
        let per_visit = ops.total_weighted(20) as f64 / blocks[0].pixels.len() as f64;
        // A full per-pixel visit through the mixture model costs
        // thousands of FLOPs (the paper measured 32,317 with SDE for
        // the full derivative path; the value path is leaner).
        assert!(per_visit > 1000.0, "suspiciously cheap: {per_visit}");
        assert!(per_visit < 200_000.0, "suspiciously dear: {per_visit}");
    }
}
