//! Decode-robustness properties for the `SCKP` v2 checkpoint codec:
//! truncated, bit-flipped, length-lying, and arbitrary-garbage inputs
//! must come back as typed [`CheckpointError`]s (or, for payload-only
//! bit flips, a structurally bounded `Ok`) — never a panic, never a
//! read past the buffer, never an attacker-sized preallocation.

use celeste_core::{SourceParams, NUM_PARAMS};
use celeste_sched::checkpoint::{Checkpoint, CheckpointError};
use celeste_sched::fault::mix64;
use celeste_sched::runtime::RegionStats;
use celeste_sched::{RegionProvenance, RegionResult};
use celeste_survey::bands::Band;
use celeste_survey::skygeom::{FieldId, SkyCoord};
use proptest::prelude::*;

/// A deterministic but irregular valid checkpoint: `seed` varies the
/// region count, per-region source counts, and provenance key counts.
fn sample_checkpoint(seed: u64) -> Checkpoint {
    let n_regions = (mix64(seed) % 4) as u64 + 1;
    let completed = (0..n_regions)
        .map(|r| {
            let h = mix64(seed ^ (r + 1));
            let n_sources = h % 3;
            RegionResult {
                task_id: h,
                stage: (h % 2) as u8,
                node: (h % 5) as usize,
                sources: (0..n_sources)
                    .map(|i| {
                        let mut params = [0.0; NUM_PARAMS];
                        for (j, p) in params.iter_mut().enumerate() {
                            *p = f64::from_bits(mix64(h ^ (i << 8) ^ j as u64));
                        }
                        SourceParams {
                            id: h ^ i,
                            base_pos: SkyCoord::new(
                                (h % 360) as f64,
                                (h % 120) as f64 / 2.0 - 30.0,
                            ),
                            params,
                        }
                    })
                    .collect(),
                stats: RegionStats {
                    passes: 1,
                    batches: 2,
                    fits: (h % 100) as usize,
                    newton_iters: 17,
                    conflict_edges: 3,
                    active_pixels: 4096,
                    graph_builds: 1,
                },
                provenance: RegionProvenance {
                    image_keys: (0..h % 4)
                        .map(|k| {
                            (
                                FieldId {
                                    run: (h >> 8) as u32,
                                    camcol: (k + 1) as u16,
                                    field: k as u16,
                                },
                                Band::ALL[(k % 5) as usize],
                            )
                        })
                        .collect(),
                    config_hash: mix64(h),
                },
            }
        })
        .collect();
    Checkpoint {
        fingerprint: mix64(seed ^ 0xF1),
        completed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every strict prefix of a valid encoding is a typed Malformed
    /// error: the format carries explicit counts, so running out of
    /// bytes early is always detectable (and must never over-read).
    #[test]
    fn truncation_is_a_typed_error(seed in 0u64..1_000_000, frac in 0.0..1.0f64) {
        let bytes = sample_checkpoint(seed).encode();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            matches!(
                Checkpoint::decode(&bytes[..cut]),
                Err(CheckpointError::Malformed(_))
            ),
            "truncation to {cut}/{} bytes must be Malformed",
            bytes.len()
        );
    }

    /// Flipping any single bit never panics: the result is either a
    /// typed error or a decode whose structure is bounded by the
    /// original (a flip can only land in a fixed-width field, and the
    /// count checks keep lied counts from inflating the output).
    #[test]
    fn single_bit_flip_never_panics(seed in 0u64..1_000_000, pos in 0.0..1.0f64, bit in 0u32..8) {
        let mut bytes = sample_checkpoint(seed).encode();
        let n_regions_orig = sample_checkpoint(seed).completed.len();
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        match Checkpoint::decode(&bytes) {
            Err(CheckpointError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other:?}"),
            Ok(ckpt) => {
                // A flip below the region count can only shrink or
                // keep the region count (growing it would demand
                // bytes the buffer doesn't have — except a flip in
                // the count field itself when regions are empty
                // enough to re-parse, which the size cap bounds).
                prop_assert!(
                    ckpt.completed.len() <= n_regions_orig.max(1) * 8 + 8,
                    "decoded {} regions from a 1-bit corruption of {}",
                    ckpt.completed.len(),
                    n_regions_orig
                );
            }
        }
    }

    /// Arbitrary garbage never panics and never over-reads: decode
    /// returns some typed result for every input.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = Checkpoint::decode(&bytes);
    }

    /// Garbage behind a valid header prefix (magic + version) drives
    /// the interior paths: still typed, still panic-free.
    #[test]
    fn garbage_with_valid_header_never_panics(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let mut buf = b"SCKP\x02\x00".to_vec();
        buf.extend(bytes.into_iter().map(|b| b as u8));
        let _ = Checkpoint::decode(&buf);
    }
}

/// Length-lying counts: each count field is overwritten with huge
/// values; decode must reject with a typed error without reserving
/// attacker-sized memory or reading past the buffer. (Deterministic
/// offsets, so this is a plain test, not a property.)
#[test]
fn length_lying_counts_are_rejected() {
    let bytes = sample_checkpoint(7).encode();

    // n_regions lives at offset 14 (magic 4 + version 2 + fp 8).
    let mut lie = bytes.clone();
    lie[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&lie),
        Err(CheckpointError::Malformed(_))
    ));

    // n_sources of the first region: offset 18 + 8 + 1 + 4 = 31.
    let mut lie = bytes.clone();
    lie[31..35].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Checkpoint::decode(&lie),
        Err(CheckpointError::Malformed(_))
    ));

    // A lying count that would overflow `n * per_entry` on 32-bit
    // (and is absurd on 64-bit) must also be caught by the
    // checked-arithmetic path, not wrap around.
    let mut lie = bytes;
    lie[31..35].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
    match Checkpoint::decode(&lie) {
        Err(CheckpointError::Malformed(msg)) => {
            assert!(
                msg.contains("truncated") || msg.contains("overflow"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("want Malformed, got {other:?}"),
    }
}

/// The valid samples the mutation properties start from must
/// themselves round-trip, or the properties above are vacuous.
#[test]
fn samples_round_trip() {
    for seed in 0..32 {
        let ckpt = sample_checkpoint(seed);
        let decoded = Checkpoint::decode(&ckpt.encode()).expect("valid sample must decode");
        assert_eq!(decoded.fingerprint, ckpt.fingerprint);
        assert_eq!(decoded.completed.len(), ckpt.completed.len());
    }
}
