//! Allocation regression test for the overlapped (assembly/fit
//! pipelined) region runtime: Newton iterations must never allocate.
//!
//! `process_region` as a whole is not allocation-free — problem
//! assembly builds each source's pixel blocks — but the steady-state
//! claim is that every allocation belongs to assembly and none to the
//! Newton loop. The test pins that by running the same region twice
//! with different iteration budgets: identical assembly work, very
//! different amounts of Newton work. If the overlapped fit path
//! allocated anything per iteration (or per trust-region trial), the
//! deeper run would allocate more.
//!
//! The pool is one worker wide so every job runs on one thread (the
//! thread-local allocation counter then sees all of it, and the
//! schedule is deterministic). The `join`-based pipeline still runs —
//! the assembly job is pushed, the fit runs inline, and the job is
//! popped back — so the overlapped code path itself is what's
//! measured.

use celeste_core::{FitConfig, ModelPriors, SourceParams};
use celeste_survey::bands::Band;
use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::psf::Psf;
use celeste_survey::render::render_observed;
use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
use celeste_survey::wcs::Wcs;
use celeste_survey::{Image, Priors};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

std::thread_local! {
    // Const-initialized: plain TLS slot, no lazy setup allocation.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Count an allocation against the calling thread. `try_with` so a
/// late allocation during TLS teardown can't recurse or abort.
fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: pure pass-through to `System` plus a TLS counter bump;
// every GlobalAlloc contract obligation is delegated unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's layout contract; forwarded
    // verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: as for `alloc` — `ptr`/`layout` come from a matching
    // `System` allocation.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same ptr/layout pair the caller vouched for.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: as for `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: same ptr/layout/new_size the caller vouched for.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

fn scene() -> (Catalog, Vec<Image>) {
    let entries: Vec<CatalogEntry> = (0..6)
        .map(|i| CatalogEntry {
            id: i,
            pos: SkyCoord::new(0.004 + 0.004 * i as f64, 0.012),
            source_type: SourceType::Star,
            flux_r_nmgy: 10.0 + 3.0 * i as f64,
            colors: [0.4, 0.2, 0.1, 0.05],
            shape: GalaxyShape::round_disk(1.0),
        })
        .collect();
    let truth = Catalog::new(entries);
    let rect = SkyRect::new(0.0, 0.03, 0.0, 0.03);
    let images: Vec<Image> = [Band::R, Band::G]
        .iter()
        .map(|&band| {
            let mut img = Image::blank(
                FieldId {
                    run: 1,
                    camcol: 1,
                    field: 0,
                },
                band,
                Wcs::for_rect(&rect, 80, 80),
                80,
                80,
                140.0,
                300.0,
                Psf::core_halo(1.3),
            );
            render_observed(&truth, &mut img, 31 + band.index() as u64);
            img
        })
        .collect();
    (truth, images)
}

#[test]
fn overlapped_region_fits_do_not_allocate_per_iteration() {
    let (truth, images) = scene();
    let refs: Vec<&Image> = images.iter().collect();
    let priors = ModelPriors::new(Priors::sdss_default());
    let init: Vec<SourceParams> = truth
        .entries
        .iter()
        .map(SourceParams::init_from_entry)
        .collect();

    let cfg_of = |max_iters: usize| {
        let mut cfg = FitConfig {
            bca_passes: 1,
            ..FitConfig::default()
        };
        cfg.newton.max_iters = max_iters;
        cfg
    };

    let pool = celeste_par::ThreadPool::new(1);
    let (shallow, deep, iters_shallow, iters_deep) = pool.install(|| {
        // Warmup: builds the worker's thread-local fit state (Newton
        // workspace + assembly scratch) and any other one-time
        // buffers, so the measured runs see only steady state.
        let mut warm = init.clone();
        celeste_sched::process_region(&mut warm, &refs, &[], &priors, &cfg_of(12), 1, 0x0A11);

        let mut a = init.clone();
        let before = allocs();
        let stats_a =
            celeste_sched::process_region(&mut a, &refs, &[], &priors, &cfg_of(2), 1, 0x0A11);
        let shallow = allocs() - before;

        let mut b = init.clone();
        let before = allocs();
        let stats_b =
            celeste_sched::process_region(&mut b, &refs, &[], &priors, &cfg_of(12), 1, 0x0A11);
        let deep = allocs() - before;

        (shallow, deep, stats_a.newton_iters, stats_b.newton_iters)
    });

    // The two runs did genuinely different amounts of Newton work...
    assert!(
        iters_deep > iters_shallow,
        "fixture too easy: {iters_shallow} vs {iters_deep} Newton iters"
    );
    // ...but allocated identically: every allocation is assembly-side,
    // none per Newton iteration or trust-region trial, overlapped
    // pipeline included.
    assert_eq!(
        shallow, deep,
        "overlapped fit path allocated per iteration \
         ({iters_shallow} iters -> {shallow} allocs, {iters_deep} iters -> {deep} allocs)"
    );
}
