//! Dtree: distributed dynamic scheduling with a tree topology.
//!
//! Celeste schedules its irregular tasks with Dtree [Pamnany et al.
//! 2015]: compute nodes form a tree of logarithmic height; work flows
//! down the tree in batches whose size shrinks as the remaining work
//! shrinks, so "to distribute tasks, each node only needs to
//! communicate with its parent and its immediate children" (§IV-B).
//!
//! This implementation keeps the Dtree structure — per-node work pools
//! arranged in a `fanout`-ary tree, batch refills that traverse only
//! the parent edge, geometrically decaying batch sizes — while using
//! shared memory (locks) as the transport, since the workspace runs on
//! one machine. Message counts and traversal depths are recorded so
//! the scaling analysis (and tests) can verify the O(log n) behavior.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Scheduler statistics.
#[derive(Debug, Default)]
pub struct DtreeStats {
    /// Parent→child batch transfers ("messages").
    pub transfers: AtomicU64,
    /// Total tasks served to workers.
    pub served: AtomicU64,
    /// Maximum tree distance a refill had to travel.
    pub max_refill_depth: AtomicU64,
}

struct Node<T> {
    pool: Mutex<VecDeque<T>>,
    parent: Option<usize>,
    /// Number of leaves in this node's subtree (for batch sizing).
    subtree_leaves: usize,
    depth: usize,
}

/// A Dtree scheduler over `n_leaves` workers ("nodes" in the paper's
/// cluster sense). The root holds all tasks initially; leaves call
/// [`Dtree::pop`].
pub struct Dtree<T> {
    nodes: Vec<Node<T>>,
    /// Leaf node index per worker.
    leaf_of_worker: Vec<usize>,
    fanout: usize,
    /// Fraction of a pool forwarded per refill request.
    refill_frac: f64,
    min_batch: usize,
    pub stats: DtreeStats,
}

impl<T> Dtree<T> {
    /// Build a tree over `n_workers` leaves with the given fanout and
    /// load all `tasks` at the root.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0` — a scheduler with no workers can
    /// never drain its pool, so this is a programming error at the
    /// call site, not a recoverable condition.
    pub fn new(n_workers: usize, fanout: usize, tasks: Vec<T>) -> Dtree<T> {
        assert!(n_workers > 0, "Dtree requires at least one worker");
        let fanout = fanout.max(2);
        // Build a complete fanout-ary tree with at least n_workers leaves.
        // `levels` starts non-empty and only grows, so the `expect`s on
        // `last()` here and below are provably unreachable.
        let mut levels = vec![1usize];
        while *levels.last().expect("nonempty") < n_workers {
            levels.push(levels.last().unwrap() * fanout);
        }
        let mut nodes: Vec<Node<T>> = Vec::new();
        let mut level_start = Vec::new();
        for (d, &count) in levels.iter().enumerate() {
            level_start.push(nodes.len());
            for i in 0..count {
                let parent = if d == 0 {
                    None
                } else {
                    Some(level_start[d - 1] + i / fanout)
                };
                nodes.push(Node {
                    pool: Mutex::new(VecDeque::new()),
                    parent,
                    subtree_leaves: 0,
                    depth: d,
                });
            }
        }
        // Leaves = first n_workers nodes of the last level.
        let last = *level_start.last().expect("nonempty");
        let leaf_of_worker: Vec<usize> = (0..n_workers).map(|w| last + w).collect();
        // Subtree leaf counts (walk up from each used leaf).
        for &leaf in &leaf_of_worker {
            let mut cur = Some(leaf);
            while let Some(i) = cur {
                nodes[i].subtree_leaves += 1;
                cur = nodes[i].parent;
            }
        }
        let mut q = VecDeque::from(tasks);
        let total = q.len();
        nodes[0].pool.lock().append(&mut q);
        let _ = total;
        Dtree {
            nodes,
            leaf_of_worker,
            fanout,
            refill_frac: 0.5,
            min_batch: 1,
            stats: DtreeStats::default(),
        }
    }

    /// Pop a task for `worker`. Refills the leaf pool from ancestors
    /// when empty; returns `None` when the whole tree is drained, or
    /// when `worker` is out of range (an out-of-range worker id owns
    /// no leaf, hence has no work — it is not a panic).
    pub fn pop(&self, worker: usize) -> Option<T> {
        let leaf = *self.leaf_of_worker.get(worker)?;
        loop {
            if let Some(t) = self.nodes[leaf].pool.lock().pop_front() {
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
            if !self.refill(leaf) {
                return None;
            }
        }
    }

    /// Pull a batch from the nearest non-empty ancestor into `leaf`'s
    /// chain. Returns false when no ancestor has work.
    fn refill(&self, leaf: usize) -> bool {
        // Find nearest ancestor with work.
        let mut chain = vec![leaf];
        let mut cur = self.nodes[leaf].parent;
        let mut donor = None;
        while let Some(i) = cur {
            if !self.nodes[i].pool.lock().is_empty() {
                donor = Some(i);
                break;
            }
            chain.push(i);
            cur = self.nodes[i].parent;
        }
        let Some(mut from) = donor else { return false };
        let depth_travelled = (self.nodes[leaf].depth - self.nodes[from].depth) as u64;
        self.stats
            .max_refill_depth
            .fetch_max(depth_travelled, Ordering::Relaxed);
        // Move batches down the chain, one edge at a time (parent →
        // child messages only, as in Dtree).
        while let Some(&to) = chain
            .iter()
            .rev()
            .find(|&&n| self.nodes[n].depth > self.nodes[from].depth)
        {
            // Batch size: proportional share of the donor pool for the
            // receiving subtree, decaying as the pool drains.
            let mut src = self.nodes[from].pool.lock();
            if src.is_empty() {
                return true; // someone else drained it; retry from pop
            }
            let share = self.nodes[to].subtree_leaves as f64
                / self.nodes[from].subtree_leaves.max(1) as f64;
            let batch = ((src.len() as f64 * share * self.refill_frac).ceil() as usize)
                .clamp(self.min_batch, src.len());
            let mut moved: VecDeque<T> = src.drain(..batch).collect();
            drop(src);
            self.nodes[to].pool.lock().append(&mut moved);
            self.stats.transfers.fetch_add(1, Ordering::Relaxed);
            from = to;
            if to == leaf {
                break;
            }
        }
        true
    }

    /// Configured fanout of the tree.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height (edges from root to leaves).
    pub fn height(&self) -> usize {
        self.nodes.last().map(|n| n.depth).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn serves_every_task_exactly_once_single_worker() {
        let dt = Dtree::new(1, 2, (0..100).collect::<Vec<_>>());
        let mut seen = Vec::new();
        while let Some(t) = dt.pop(0) {
            seen.push(t);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn serves_every_task_exactly_once_concurrent() {
        let n_workers = 8;
        let n_tasks = 5000;
        let dt = Arc::new(Dtree::new(
            n_workers,
            4,
            (0..n_tasks).collect::<Vec<usize>>(),
        ));
        let counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n_tasks).map(|_| AtomicUsize::new(0)).collect());
        std::thread::scope(|s| {
            for w in 0..n_workers {
                let dt = Arc::clone(&dt);
                let counts = Arc::clone(&counts);
                s.spawn(move || {
                    while let Some(t) = dt.pop(w) {
                        counts[t].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} served wrong count");
        }
        assert_eq!(dt.stats.served.load(Ordering::Relaxed), n_tasks as u64);
    }

    #[test]
    fn tree_height_is_logarithmic() {
        for &(workers, fanout) in &[(64usize, 2usize), (1024, 4), (8192, 8)] {
            let dt = Dtree::new(workers, fanout, Vec::<u32>::new());
            let expect = (workers as f64).log(fanout as f64).ceil() as usize;
            assert!(
                dt.height() <= expect + 1,
                "{workers} workers fanout {fanout}: height {} vs ~{expect}",
                dt.height()
            );
        }
    }

    #[test]
    fn transfers_scale_gently_with_tasks() {
        // Dtree moves batches, so transfers ≪ tasks.
        let n_tasks = 10_000;
        let dt = Arc::new(Dtree::new(16, 4, (0..n_tasks).collect::<Vec<usize>>()));
        std::thread::scope(|s| {
            for w in 0..16 {
                let dt = Arc::clone(&dt);
                s.spawn(move || while dt.pop(w).is_some() {});
            }
        });
        let transfers = dt.stats.transfers.load(Ordering::Relaxed);
        assert!(
            transfers < n_tasks as u64 / 4,
            "too many transfers: {transfers} for {n_tasks} tasks"
        );
    }

    #[test]
    fn empty_tree_returns_none() {
        let dt = Dtree::new(4, 2, Vec::<u8>::new());
        assert!(dt.pop(0).is_none());
        assert!(dt.pop(3).is_none());
    }

    #[test]
    fn out_of_range_worker_gets_no_work_and_steals_none() {
        let dt = Dtree::new(2, 2, vec![1u8, 2, 3]);
        assert!(dt.pop(7).is_none());
        let mut seen = Vec::new();
        while let Some(t) = dt.pop(0) {
            seen.push(t);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn uneven_workers_all_make_progress() {
        // 5 workers on a fanout-2 tree (non-power-of-two).
        let dt = Arc::new(Dtree::new(5, 2, (0..1000).collect::<Vec<usize>>()));
        let served: Arc<Vec<AtomicUsize>> = Arc::new((0..5).map(|_| AtomicUsize::new(0)).collect());
        std::thread::scope(|s| {
            for w in 0..5 {
                let dt = Arc::clone(&dt);
                let served = Arc::clone(&served);
                s.spawn(move || {
                    while dt.pop(w).is_some() {
                        served[w].fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                });
            }
        });
        let total: usize = served.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 1000);
        for w in 0..5 {
            assert!(
                served[w].load(Ordering::Relaxed) > 0,
                "worker {w} starved: {served:?}"
            );
        }
    }
}
