//! Deterministic fault injection for campaign chaos testing.
//!
//! The paper's headline run spans 650k cores — a regime where node
//! failures, stragglers, and I/O errors are routine. A [`FaultPlan`]
//! injects those failure modes into the *production* campaign path
//! (not a mock): fit panics and stalls fire inside the node loop, and
//! image-load errors fire inside [`celeste_survey::io::ImageStore`]
//! via [`celeste_survey::io::LoadFaults`]. Every decision is a pure
//! function of `(seed, task, attempt)` — independent of thread
//! interleaving — so chaos suites are reproducible and flake-free.
//!
//! Enable via [`CampaignConfig::faults`](crate::CampaignConfig) or
//! the `CELESTE_FAULTS` environment variable, e.g.
//! `CELESTE_FAULTS="seed=7,io=0.2,panic=0.3,slow=0.1,hang=0.1"`.

use std::time::Duration;

/// splitmix64 finalizer: the shared mixing step behind every fault
/// decision and backoff jitter draw.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic uniform draw in `[0, 1)` from `(seed, salt, a, b)`.
#[inline]
pub fn roll(seed: u64, salt: u64, a: u64, b: u64) -> f64 {
    let h = mix64(seed ^ mix64(salt) ^ mix64(a).rotate_left(17) ^ b);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_PANIC: u64 = 0xFA17_0001;
const SALT_SLOW: u64 = 0xFA17_0002;
const SALT_HANG: u64 = 0xFA17_0003;

/// A seeded schedule of injected faults for one campaign run. All
/// rates are probabilities in `[0, 1]` evaluated per `(task,
/// attempt)` (or per `(key, load)` for I/O), so reissued attempts
/// draw fresh decisions and retries can heal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed behind every decision in this plan.
    pub seed: u64,
    /// Probability an image load fails with `IoError::Injected`.
    pub io_error_rate: f64,
    /// Cap on injected load failures per image key (keep it below the
    /// retry budget so tasks heal; raise it to force quarantine).
    pub io_max_per_key: u32,
    /// Probability a region fit panics mid-attempt.
    pub panic_rate: f64,
    /// Probability a region fit is artificially slowed by `slow_for`.
    pub slow_rate: f64,
    /// Stall applied to slow tasks (on the campaign clock).
    pub slow_for: Duration,
    /// Probability a finished attempt hangs past its lease deadline
    /// (the holder stalls until the supervisor has reissued the task,
    /// so its late completion arrives on an expired lease).
    pub hang_rate: f64,
}

impl Default for FaultPlan {
    /// All faults disabled.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            io_error_rate: 0.0,
            io_max_per_key: 1,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_for: Duration::from_millis(20),
            hang_rate: 0.0,
        }
    }
}

impl FaultPlan {
    /// Whether any fault can fire under this plan.
    pub fn is_active(&self) -> bool {
        self.io_error_rate > 0.0
            || self.panic_rate > 0.0
            || self.slow_rate > 0.0
            || self.hang_rate > 0.0
    }

    /// Parse `CELESTE_FAULTS` (`seed=7,io=0.2,panic=0.3,slow=0.1,`
    /// `hang=0.1,io_max=2,slow_ms=20`). Returns `None` when unset or
    /// empty; unknown or malformed entries are ignored.
    pub fn from_env() -> Option<FaultPlan> {
        FaultPlan::parse(&std::env::var("CELESTE_FAULTS").ok()?)
    }

    /// Parse a `CELESTE_FAULTS`-style spec string. `None` when empty
    /// or when every rate is zero.
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        if spec.trim().is_empty() {
            return None;
        }
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let Some((k, v)) = part.split_once('=') else {
                continue;
            };
            let (k, v) = (k.trim(), v.trim());
            match k {
                "seed" => plan.seed = v.parse().unwrap_or(plan.seed),
                "io" => plan.io_error_rate = v.parse().unwrap_or(plan.io_error_rate),
                "io_max" => plan.io_max_per_key = v.parse().unwrap_or(plan.io_max_per_key),
                "panic" => plan.panic_rate = v.parse().unwrap_or(plan.panic_rate),
                "slow" => plan.slow_rate = v.parse().unwrap_or(plan.slow_rate),
                "slow_ms" => {
                    plan.slow_for = Duration::from_millis(v.parse().unwrap_or(20));
                }
                "hang" => plan.hang_rate = v.parse().unwrap_or(plan.hang_rate),
                _ => {}
            }
        }
        plan.is_active().then_some(plan)
    }

    /// Whether attempt `attempt` of task `task_id` panics.
    pub fn should_panic(&self, task_id: u64, attempt: u32) -> bool {
        roll(self.seed, SALT_PANIC, task_id, attempt as u64) < self.panic_rate
    }

    /// Whether attempt `attempt` of task `task_id` is slowed.
    pub fn should_slow(&self, task_id: u64, attempt: u32) -> bool {
        roll(self.seed, SALT_SLOW, task_id, attempt as u64) < self.slow_rate
    }

    /// Whether attempt `attempt` of task `task_id` hangs past its
    /// lease deadline.
    pub fn should_hang(&self, task_id: u64, attempt: u32) -> bool {
        roll(self.seed, SALT_HANG, task_id, attempt as u64) < self.hang_rate
    }

    /// Tasks among `task_ids` whose first `max_attempts` attempts all
    /// panic — the set a campaign with this plan must quarantine.
    /// Chaos tests compute this to pin quarantine decisions exactly.
    pub fn quarantined_by_panics(&self, task_ids: &[u64], max_attempts: u32) -> Vec<u64> {
        task_ids
            .iter()
            .copied()
            .filter(|&id| (1..=max_attempts).all(|a| self.should_panic(id, a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_functions_of_inputs() {
        let plan = FaultPlan {
            seed: 99,
            panic_rate: 0.5,
            hang_rate: 0.3,
            slow_rate: 0.3,
            ..Default::default()
        };
        for task in 0..50u64 {
            for attempt in 1..4u32 {
                assert_eq!(
                    plan.should_panic(task, attempt),
                    plan.should_panic(task, attempt)
                );
            }
        }
        // Different salts decorrelate the fault kinds: over many
        // tasks, panic and hang decisions must not be identical.
        let panics: Vec<bool> = (0..200).map(|t| plan.should_panic(t, 1)).collect();
        let hangs: Vec<bool> = (0..200).map(|t| plan.should_hang(t, 1)).collect();
        assert_ne!(panics, hangs);
        // Rates are roughly honored.
        let frac = panics.iter().filter(|&&p| p).count() as f64 / 200.0;
        assert!((0.3..0.7).contains(&frac), "panic fraction {frac}");
    }

    #[test]
    fn env_parsing_roundtrips() {
        // The same code path from_env uses, without mutating the
        // process environment (other tests run in parallel).
        let plan =
            FaultPlan::parse("seed=7, io=0.25, panic=0.5, hang=0.1, io_max=3").expect("parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.io_error_rate, 0.25);
        assert_eq!(plan.panic_rate, 0.5);
        assert_eq!(plan.hang_rate, 0.1);
        assert_eq!(plan.io_max_per_key, 3);
        assert!(plan.is_active());
    }

    #[test]
    fn quarantine_prediction_matches_per_attempt_rolls() {
        let plan = FaultPlan {
            seed: 5,
            panic_rate: 0.7,
            ..Default::default()
        };
        let ids: Vec<u64> = (0..40).collect();
        let q = plan.quarantined_by_panics(&ids, 2);
        assert!(!q.is_empty() && q.len() < ids.len());
        for id in ids {
            let expect = plan.should_panic(id, 1) && plan.should_panic(id, 2);
            assert_eq!(q.contains(&id), expect);
        }
    }
}
