//! End-to-end campaign driver: the whole paper pipeline on one machine.
//!
//! Simulated "nodes" are dedicated orchestration threads that lease
//! region tasks from a [`crate::lease::TaskLedger`] (Dtree
//! distribution for fresh work), stage their images through a
//! prefetching loader (the Burst Buffer path), jointly optimize the
//! region's sources with Cyclades worker spawns on the shared
//! `celeste-par` executor, and write results back to the PGAS store.
//! The loops themselves stay off the executor because they block (on
//! prefetch waits and lease clocks); only their short compute jobs
//! are stealable. Runtime is decomposed
//! into the paper's four components (§VII-C): *image loading*
//! (first-task blocking waits), *task processing* (the compute loop),
//! *load imbalance* (idle after the queue drains), and *other*
//! (scheduling, parameter I/O, output).
//!
//! # Fault tolerance
//!
//! At the paper's scale (650k cores) failures are routine, so the
//! driver survives them instead of aborting:
//!
//! * Every task is processed under a **lease**; a completion is
//!   accepted only while its lease is current, so results are
//!   exactly-once even when hung tasks are reclaimed and reissued.
//! * Each region fit runs under `catch_unwind`: a panicking fit (or
//!   failed image load) becomes a typed [`RegionError`] feeding
//!   bounded retries with seeded-jittered exponential backoff.
//! * Tasks that exhaust their retry budget are **quarantined** into
//!   [`CampaignReport::failed_regions`] — the campaign completes
//!   without them (their sources keep initialization parameters).
//! * With a [`CheckpointConfig`], completed results persist
//!   periodically; [`RunOptions::resume`] restarts from the file,
//!   re-running only unfinished regions, bit-identical to an
//!   uninterrupted run.
//! * A [`FaultPlan`] (config or `CELESTE_FAULTS` env) injects I/O
//!   errors, fit panics, stalls, and hangs into these *production*
//!   paths deterministically, for chaos testing.
//!
//! All resilience bookkeeping happens at region granularity — one
//! mutex acquisition per task attempt, nothing per fit or per pixel.
//!
//! The per-task duration samples this driver measures are what
//! calibrate the petascale discrete-event simulator in
//! `celeste-cluster`.

use crate::checkpoint::{plan_fingerprint, Checkpoint, CheckpointConfig, CheckpointError};
use crate::fault::FaultPlan;
use crate::lease::{
    Acquire, Clock, FailedRegion, RegionError, RetryPolicy, SystemClock, TaskLedger,
};
use crate::partition::RegionTask;
use crate::pgas::ParamStore;
use crate::runtime::{process_region, RegionStats};
use celeste_core::{FitConfig, ModelPriors, SourceParams};
use celeste_survey::bands::Band;
use celeste_survey::io::{ImageKey, ImageStore, IoError, LoadFaults, Prefetcher};
use celeste_survey::synth::SyntheticSurvey;
use celeste_survey::Catalog;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A fatal campaign failure. Per-region failures (image loads, fit
/// panics, expired leases) are *not* fatal — they feed the retry path
/// and, at worst, quarantine the region into
/// [`CampaignReport::failed_regions`]. What remains fatal: staging
/// failures, output-catalog write failures, and checkpoint problems
/// (a durability guarantee that cannot be kept is an error).
#[derive(Debug)]
pub enum CampaignError {
    /// Writing an image into the store during staging failed.
    Staging {
        /// The (field, band) that failed to stage.
        key: ImageKey,
        /// The underlying store error.
        source: IoError,
    },
    /// A node's blocking image fetch failed mid-campaign. Retained
    /// for API stability: since the resilience layer, load failures
    /// are retried and surface as quarantined regions instead.
    ImageLoad {
        /// The (field, band) that failed to load.
        key: ImageKey,
        /// The underlying store error.
        source: IoError,
    },
    /// Writing the fitted output catalog failed.
    Output(IoError),
    /// Reading the resume checkpoint or writing a periodic
    /// checkpoint failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Staging { key, source } => {
                write!(f, "staging image {:?}/{} failed: {source}", key.0, key.1)
            }
            CampaignError::ImageLoad { key, source } => {
                write!(f, "loading image {:?}/{} failed: {source}", key.0, key.1)
            }
            CampaignError::Output(source) => write!(f, "writing output catalog failed: {source}"),
            CampaignError::Checkpoint(source) => write!(f, "campaign checkpoint failed: {source}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Staging { source, .. }
            | CampaignError::ImageLoad { source, .. }
            | CampaignError::Output(source) => Some(source),
            CampaignError::Checkpoint(source) => Some(source),
        }
    }
}

/// What a region's fit was conditioned on: the exact set of images it
/// read (a source is covered by 5–480 overlapping exposures, paper
/// §IV-A) and a hash of the fit configuration. Two fits with equal
/// provenance over the same sources are bit-identical, which is what
/// lets a catalog store skip refitting unchanged shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionProvenance {
    /// Every (field, band) image the task's fit read, in the
    /// deterministic [`task_image_keys`] order.
    pub image_keys: Vec<ImageKey>,
    /// [`fit_config_hash`] of the campaign's [`FitConfig`].
    pub config_hash: u64,
}

/// Bit-exact hash of every [`FitConfig`] knob that can change a fit's
/// result. Part of a region's [`RegionProvenance`]: a re-run with a
/// different configuration must never reuse cached shard results.
pub fn fit_config_hash(fit: &FitConfig) -> u64 {
    use crate::fault::mix64;
    let mut acc = 0x5EED_CA7A_106D_0001u64;
    for bits in [
        fit.newton.max_iters as u64,
        fit.newton.grad_tol.to_bits(),
        fit.newton.f_tol.to_bits(),
        fit.newton.initial_radius.to_bits(),
        fit.newton.max_radius.to_bits(),
        fit.active_nsigma.to_bits(),
        fit.min_radius_px.to_bits(),
        fit.max_radius_px.to_bits(),
        fit.bca_passes as u64,
        fit.laplace_scales as u64,
        fit.cull_tol.to_bits(),
    ] {
        acc = mix64(acc ^ mix64(bits));
    }
    acc
}

/// One finished region task, as emitted on the streaming path while
/// the campaign is still running: the fitted parameters of every
/// source in the task plus the region-level optimizer statistics.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// The [`RegionTask::id`] this result belongs to.
    pub task_id: u64,
    /// Partition stage (0 = primary, 1 = shifted boundary pass).
    pub stage: u8,
    /// The simulated node that processed the task.
    pub node: usize,
    /// Fitted parameters for every source in the task, in task order.
    pub sources: Vec<SourceParams>,
    /// Cyclades optimizer statistics for the region.
    pub stats: RegionStats,
    /// The images and configuration this fit was conditioned on.
    pub provenance: RegionProvenance,
}

/// Where streaming campaign drivers emit [`RegionResult`]s: the
/// sending half of a crossbeam MPMC channel, so results can be
/// consumed, checkpointed, or served while later tasks still compute.
pub type RegionSink = crossbeam::channel::Sender<RegionResult>;

/// Cooperative cancellation for a running campaign. Cloning shares
/// the flag; once [`CancelToken::cancel`] is called, node loops stop
/// leasing new work at the next task boundary and the campaign
/// returns `Ok` with [`CampaignReport::cancelled`] set (cancellation
/// is a clean early exit, not an error).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The four runtime components of Figs. 4–5.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTimes {
    pub image_loading: f64,
    pub task_processing: f64,
    pub load_imbalance: f64,
    pub other: f64,
}

impl ComponentTimes {
    pub fn total(&self) -> f64 {
        self.image_loading + self.task_processing + self.load_imbalance + self.other
    }

    pub fn add(&mut self, o: &ComponentTimes) {
        self.image_loading += o.image_loading;
        self.task_processing += o.task_processing;
        self.load_imbalance += o.load_imbalance;
        self.other += o.other;
    }
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Simulated compute nodes (each is one scheduler task on the
    /// executor).
    pub n_nodes: usize,
    /// Cyclades batch width per node (component lists per batch;
    /// actual parallelism is bounded by the executor pool).
    pub threads_per_node: usize,
    /// Prefetcher I/O threads (shared across nodes — the Burst Buffer).
    pub prefetch_workers: usize,
    /// Dtree fanout.
    pub dtree_fanout: usize,
    pub fit: FitConfig,
    /// Lease/retry/backoff policy for region tasks. The lease timeout
    /// must comfortably exceed the slowest task's duration; the
    /// default (30s) is ~1000× a typical laptop-scale region fit.
    pub retry: RetryPolicy,
    /// Injected faults for chaos testing. `None` (the default) falls
    /// back to the `CELESTE_FAULTS` environment variable, so the CI
    /// chaos job exercises the exact production code paths.
    pub faults: Option<FaultPlan>,
}

impl Default for CampaignConfig {
    /// Node and thread counts default to the single `CELESTE_THREADS`
    /// knob (available parallelism when unset) instead of ad-hoc
    /// constants, so one setting sizes the whole stack.
    fn default() -> Self {
        let threads = celeste_par::configured_threads();
        CampaignConfig {
            n_nodes: threads.min(2),
            threads_per_node: threads,
            prefetch_workers: threads.max(2),
            dtree_fanout: 4,
            fit: FitConfig::default(),
            retry: RetryPolicy::default(),
            faults: None,
        }
    }
}

/// Measured results of a campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    pub per_node: Vec<ComponentTimes>,
    /// Wall-clock of the whole campaign, seconds.
    pub makespan: f64,
    pub tasks_completed: usize,
    pub sources_optimized: usize,
    /// Per-task processing durations, seconds (simulator calibration).
    pub task_durations: Vec<f64>,
    /// Predicted work of each task (aligned with `task_durations`),
    /// used to normalize durations when calibrating the simulator.
    pub task_works: Vec<f64>,
    /// Per-image blocking-load durations, seconds.
    pub image_load_durations: Vec<f64>,
    /// Active-pixel visits during the run.
    pub active_pixel_visits: u64,
    /// Regions that exhausted their retry budget and were quarantined,
    /// with the error chain of every failed attempt. Their sources
    /// keep initialization parameters in the output catalog.
    pub failed_regions: Vec<FailedRegion>,
    /// Task reissues after failed attempts or expired leases.
    pub retries: u64,
    /// Leases reclaimed (or completions refused) past their deadline.
    pub leases_expired: u64,
    /// Results discarded because their lease was no longer current —
    /// the exactly-once arbitration rejecting late duplicates.
    pub stale_results: u64,
    /// Tasks restored from a resume checkpoint instead of re-run
    /// (counted in `tasks_completed` as well).
    pub tasks_restored: usize,
    /// True when the run was cancelled before every task settled.
    pub cancelled: bool,
}

impl CampaignReport {
    /// Mean component times across nodes (the stacked bars of Fig. 4).
    pub fn mean_components(&self) -> ComponentTimes {
        let mut total = ComponentTimes::default();
        for c in &self.per_node {
            total.add(c);
        }
        let n = self.per_node.len().max(1) as f64;
        ComponentTimes {
            image_loading: total.image_loading / n,
            task_processing: total.task_processing / n,
            load_imbalance: total.load_imbalance / n,
            other: total.other / n,
        }
    }
}

/// Write every survey image into `store` (staging the campaign data,
/// i.e. the paper's Lustre → Burst Buffer step). Panics if the store
/// is unwritable; the non-panicking form is [`try_stage_survey`].
pub fn stage_survey(survey: &SyntheticSurvey, store: &ImageStore) -> usize {
    try_stage_survey(survey, store).expect("stage image")
}

/// [`stage_survey`] with store failures reported as a
/// [`CampaignError::Staging`] carrying the offending (field, band)
/// instead of a panic. Returns the number of images staged.
pub fn try_stage_survey(
    survey: &SyntheticSurvey,
    store: &ImageStore,
) -> Result<usize, CampaignError> {
    use rayon::prelude::*;
    let jobs: Vec<(usize, Band)> = (0..survey.geometry.fields.len())
        .flat_map(|i| Band::ALL.iter().map(move |&b| (i, b)))
        .collect();
    let results: Vec<Result<(), CampaignError>> = jobs
        .par_iter()
        .map(|&(i, band)| {
            let field = &survey.geometry.fields[i];
            let img = survey.render_field(field, band);
            store.save(&img).map_err(|source| CampaignError::Staging {
                key: (field.id, band),
                source,
            })
        })
        .collect();
    let n = results.len();
    for r in results {
        r?;
    }
    Ok(n)
}

/// Image keys a task needs: every (field, band) whose footprint
/// intersects the (padded) region.
pub fn task_image_keys(survey: &SyntheticSurvey, task: &RegionTask) -> Vec<ImageKey> {
    let padded = task.rect.padded(20.0 / 3600.0);
    survey
        .geometry
        .fields_intersecting(&padded)
        .into_iter()
        .flat_map(|f| Band::ALL.iter().map(move |&b| (f.id, b)))
        .collect()
}

/// Optional behaviors of one campaign run, threaded through
/// [`run_campaign_with`]. The default runs exactly like the classic
/// entry points: no streaming, no checkpointing, no cancellation,
/// wall-clock time.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Emit each finished region here the moment it completes.
    pub sink: Option<&'a RegionSink>,
    /// Persist completed results periodically to this checkpoint.
    pub checkpoint: Option<&'a CheckpointConfig>,
    /// Restart from a prior checkpoint: its completed regions are
    /// restored (parameters applied, results re-emitted to `sink`)
    /// and only the remaining tasks run. The checkpoint's fingerprint
    /// must match this run's task plan.
    pub resume: Option<Checkpoint>,
    /// Cooperative cancellation; see [`CancelToken`].
    pub cancel: Option<&'a CancelToken>,
    /// Time source for leases, backoff, and injected stalls. Defaults
    /// to wall-clock; tests inject a
    /// [`VirtualClock`](crate::lease::VirtualClock) for deterministic
    /// fault timing.
    pub clock: Option<Arc<dyn Clock>>,
}

/// Run a full campaign: both partition stages, lease-scheduled across
/// `cfg.n_nodes` node threads. Returns the final catalog parameters
/// and the measured report. Panics on fatal IO failure; the
/// non-panicking forms are [`try_run_campaign`],
/// [`run_campaign_streaming`], and [`run_campaign_with`].
pub fn run_campaign(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
) -> (Vec<SourceParams>, CampaignReport) {
    campaign_inner(
        survey,
        store,
        init_catalog,
        tasks,
        priors,
        cfg,
        RunOptions::default(),
    )
    .unwrap_or_else(|e| panic!("run_campaign: {e}"))
}

/// [`run_campaign`] with IO failures reported as [`CampaignError`]s
/// instead of panics.
pub fn try_run_campaign(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
) -> Result<(Vec<SourceParams>, CampaignReport), CampaignError> {
    campaign_inner(
        survey,
        store,
        init_catalog,
        tasks,
        priors,
        cfg,
        RunOptions::default(),
    )
}

/// [`try_run_campaign`], additionally emitting a [`RegionResult`] into
/// `sink` the moment each task's lease commits — partial catalogs are
/// consumable mid-campaign from the channel's receiving half while
/// later tasks still compute. A dropped receiver does not stop the
/// campaign; emission is simply skipped. The returned parameters are
/// bit-identical to [`run_campaign`]'s: streaming observes the run,
/// it does not alter it.
pub fn run_campaign_streaming(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
    sink: &RegionSink,
) -> Result<(Vec<SourceParams>, CampaignReport), CampaignError> {
    campaign_inner(
        survey,
        store,
        init_catalog,
        tasks,
        priors,
        cfg,
        RunOptions {
            sink: Some(sink),
            ..Default::default()
        },
    )
}

/// The fully-optioned campaign entry point: streaming, checkpointing,
/// resume, cancellation, and clock injection via [`RunOptions`].
pub fn run_campaign_with(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
    options: RunOptions<'_>,
) -> Result<(Vec<SourceParams>, CampaignReport), CampaignError> {
    campaign_inner(survey, store, init_catalog, tasks, priors, cfg, options)
}

/// Everything a node hands back to the coordinator after its share of
/// a stage's ledger settles.
struct NodeOutcome {
    node: usize,
    comp: ComponentTimes,
    durations: Vec<f64>,
    works: Vec<f64>,
    loads: Vec<f64>,
    n_tasks: usize,
    n_sources: usize,
}

/// Periodic checkpoint writer shared by the node loops: accumulates
/// committed results and rewrites the checkpoint file every
/// `cfg.every` completions (plus a final flush at campaign exit).
struct Checkpointer {
    cfg: CheckpointConfig,
    fingerprint: u64,
    state: Mutex<(Vec<RegionResult>, usize)>,
}

impl Checkpointer {
    fn new(cfg: CheckpointConfig, fingerprint: u64, restored: Vec<RegionResult>) -> Checkpointer {
        Checkpointer {
            cfg,
            fingerprint,
            state: Mutex::new((restored, 0)),
        }
    }

    fn save_locked(&self, completed: &[RegionResult]) -> Result<(), CheckpointError> {
        Checkpoint {
            fingerprint: self.fingerprint,
            completed: completed.to_vec(),
        }
        .save(&self.cfg.path)
    }

    fn record(&self, result: RegionResult) -> Result<(), CheckpointError> {
        let mut state = self.state.lock();
        state.0.push(result);
        state.1 += 1;
        if state.1 >= self.cfg.every {
            state.1 = 0;
            self.save_locked(&state.0)?;
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), CheckpointError> {
        let state = self.state.lock();
        self.save_locked(&state.0)
    }
}

/// Render a `catch_unwind` payload as text for the error chain.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn campaign_inner(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
    options: RunOptions<'_>,
) -> Result<(Vec<SourceParams>, CampaignReport), CampaignError> {
    let t_campaign = Instant::now();
    celeste_core::flops::reset_visits();

    let sink = options.sink;
    let config_hash = fit_config_hash(&cfg.fit);
    let clock: Arc<dyn Clock> = options
        .clock
        .unwrap_or_else(|| Arc::new(SystemClock::default()));
    let faults = cfg.faults.or_else(FaultPlan::from_env);
    let default_cancel = CancelToken::default();
    let cancel = options.cancel.unwrap_or(&default_cancel);

    // PGAS store holds every source, partitioned across nodes.
    let params = Arc::new(ParamStore::new(cfg.n_nodes));
    for e in &init_catalog.entries {
        params.insert(SourceParams::init_from_entry(e));
    }
    let id_of: Vec<u64> = init_catalog.entries.iter().map(|e| e.id).collect();

    // Resume: restore the checkpoint's completed regions. Their
    // parameters are applied to the PGAS store stage-by-stage below
    // (stage-1 results must not overwrite stage-0 inputs early), their
    // tasks are marked pre-done in the ledger, and their results are
    // re-emitted so streaming consumers still see every region once.
    let fingerprint = plan_fingerprint(tasks);
    let restored: Vec<RegionResult> = match options.resume {
        Some(ckpt) => {
            if ckpt.fingerprint != fingerprint {
                return Err(CampaignError::Checkpoint(CheckpointError::PlanMismatch {
                    found: ckpt.fingerprint,
                    expected: fingerprint,
                }));
            }
            ckpt.completed
        }
        None => Vec::new(),
    };
    let restored_ids: std::collections::HashSet<u64> = restored.iter().map(|r| r.task_id).collect();
    let tasks_restored = restored.len();
    if let Some(sink) = sink {
        for r in &restored {
            let _ = sink.send(r.clone());
        }
    }
    let checkpointer = options
        .checkpoint
        .map(|c| Arc::new(Checkpointer::new(c.clone(), fingerprint, restored.clone())));

    // Chaos I/O faults are injected at the store the prefetcher reads
    // through — the exact production load path, not a mock.
    let prefetch_store = match &faults {
        Some(f) if f.io_error_rate > 0.0 => store.clone().with_load_faults(Arc::new(
            LoadFaults::new(f.seed, f.io_error_rate, f.io_max_per_key),
        )),
        _ => store.clone(),
    };
    let prefetcher = Arc::new(Prefetcher::new(prefetch_store, cfg.prefetch_workers));

    let mut per_node = vec![ComponentTimes::default(); cfg.n_nodes];
    let mut task_durations = Vec::new();
    let mut task_works = Vec::new();
    let mut image_load_durations = Vec::new();
    let mut tasks_completed = tasks_restored;
    let mut sources_optimized = 0usize;
    let mut failed_regions: Vec<FailedRegion> = Vec::new();
    let mut retries = 0u64;
    let mut leases_expired = 0u64;
    let mut stale_results = 0u64;

    // A checkpoint write failure is fatal: nodes stop at the next task
    // boundary and the stored error is returned.
    let fatal: Arc<Mutex<Option<CampaignError>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));

    // Stage barriers: all stage-0 tasks settle before stage-1 begins
    // (paper §IV-A).
    for stage in 0..=1u8 {
        let stage_tasks: Vec<&RegionTask> = tasks.iter().filter(|t| t.stage == stage).collect();
        if stage_tasks.is_empty() {
            continue;
        }
        // Freeze neighbor values at the stage barrier: every task in
        // this stage conditions on the same parameter snapshot, so a
        // fit never observes a concurrently completing sibling task
        // and the campaign is deterministic at any node or thread
        // count. (Own sources still read live — tasks within a stage
        // partition them, so nobody else writes them.) The snapshot
        // is taken *before* restored results are applied: a resumed
        // task must see exactly the stage inputs the fresh run saw.
        let neighbor_snapshot: Arc<std::collections::HashMap<u64, SourceParams>> = Arc::new(
            id_of
                .iter()
                .filter_map(|&id| params.get(0, id).map(|sp| (id, sp)))
                .collect(),
        );
        // Apply this stage's restored results (within a stage, tasks
        // partition the sources, so application order is immaterial).
        for r in restored.iter().filter(|r| r.stage == stage) {
            for sp in &r.sources {
                params.put(0, sp.id, &sp.params);
            }
        }
        let pre_done: Vec<usize> = stage_tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| restored_ids.contains(&t.id))
            .map(|(i, _)| i)
            .collect();
        if pre_done.len() == stage_tasks.len() {
            continue; // whole stage restored from the checkpoint
        }
        if cancel.is_cancelled() || stop.load(Ordering::SeqCst) {
            break;
        }
        let meta: Vec<(u64, u8)> = stage_tasks.iter().map(|t| (t.id, t.stage)).collect();
        let ledger = Arc::new(TaskLedger::new(
            meta,
            &pre_done,
            cfg.n_nodes,
            cfg.dtree_fanout,
            cfg.retry,
            Arc::clone(&clock),
        ));
        let results: Arc<Mutex<Vec<NodeOutcome>>> = Arc::new(Mutex::new(Vec::new()));
        let node_end_times: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let t_stage = Instant::now();

        // Node loops are *orchestration*, not compute: they block on
        // prefetch condvars and lease-clock sleeps, sometimes for a
        // whole lease timeout. They therefore run on dedicated OS
        // threads, never as pool jobs — a pool worker draining inside
        // a nested scope (a Cyclades batch, or an assembly/fit join)
        // executes whatever job it finds, and a node loop picked up
        // there would pin that scope open for the loop's entire
        // lifetime, sleeps included. Only the short-lived region jobs
        // the loops spawn through `process_region` land on the shared
        // executor.
        std::thread::scope(|s| {
            for node in 0..cfg.n_nodes {
                let ledger = Arc::clone(&ledger);
                let prefetcher = Arc::clone(&prefetcher);
                let params = Arc::clone(&params);
                let results = Arc::clone(&results);
                let node_end_times = Arc::clone(&node_end_times);
                let clock = Arc::clone(&clock);
                let fatal = Arc::clone(&fatal);
                let stop = Arc::clone(&stop);
                let checkpointer = checkpointer.clone();
                let neighbor_snapshot = Arc::clone(&neighbor_snapshot);
                let faults = &faults;
                let stage_tasks = &stage_tasks;
                let id_of = &id_of;
                let cancel = &cancel;
                s.spawn(move || {
                    let mut out = NodeOutcome {
                        node,
                        comp: ComponentTimes::default(),
                        durations: Vec::new(),
                        works: Vec::new(),
                        loads: Vec::new(),
                        n_tasks: 0,
                        n_sources: 0,
                    };
                    let mut first_task = true;

                    // Lookahead: lease + prefetch the next fresh task
                    // before computing the current one, hiding its
                    // image loads behind compute.
                    let mut next = ledger.try_acquire_fresh(node);
                    if let Some(l) = &next {
                        prefetcher.request(&task_image_keys(survey, stage_tasks[l.task_index]));
                    }
                    loop {
                        if cancel.is_cancelled() || stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let lease = match next.take() {
                            Some(l) => l,
                            None => match ledger.acquire(node) {
                                Acquire::Task(l) => l,
                                Acquire::Wait(d) => {
                                    clock.sleep(d);
                                    continue;
                                }
                                Acquire::Drained => break,
                            },
                        };
                        let task = stage_tasks[lease.task_index];
                        next = ledger.try_acquire_fresh(node);
                        if let Some(l) = &next {
                            prefetcher.request(&task_image_keys(survey, stage_tasks[l.task_index]));
                        }

                        // Blocking image fetch for the current task. A
                        // failed load fails this *attempt* (the rest of
                        // the fleet keeps working); the cached failure
                        // is evicted so the retry reloads from disk.
                        let t0 = Instant::now();
                        let keys = task_image_keys(survey, task);
                        let mut images: Vec<Arc<celeste_survey::Image>> =
                            Vec::with_capacity(keys.len());
                        let mut load_error: Option<(ImageKey, IoError)> = None;
                        for k in &keys {
                            match prefetcher.get(k) {
                                Ok(img) => images.push(img),
                                Err(source) => {
                                    load_error = Some((*k, source));
                                    break;
                                }
                            }
                        }
                        if let Some((key, source)) = load_error {
                            for k in &keys {
                                prefetcher.evict(k);
                            }
                            drop(images);
                            ledger.fail(
                                &lease,
                                RegionError::ImageLoad {
                                    key,
                                    error: source.to_string(),
                                },
                            );
                            continue;
                        }
                        let wait = t0.elapsed().as_secs_f64();
                        out.loads.push(wait);
                        if first_task {
                            out.comp.image_loading += wait;
                            first_task = false;
                        } else {
                            out.comp.other += wait;
                        }

                        // Fetch parameters (PGAS gets) for the region
                        // and nearby fixed neighbors.
                        let t1 = Instant::now();
                        let mut sources = params.load_task(node, task, id_of);
                        let neighbor_rect = task.rect.padded(15.0 / 3600.0);
                        let neighbor_ids: Vec<u64> = init_catalog
                            .entries
                            .iter()
                            .enumerate()
                            .filter(|(i, e)| {
                                !task.source_indices.contains(i) && neighbor_rect.contains(&e.pos)
                            })
                            .map(|(_, e)| e.id)
                            .collect();
                        let neighbors: Vec<SourceParams> = neighbor_ids
                            .iter()
                            .filter_map(|id| neighbor_snapshot.get(id).cloned())
                            .collect();
                        out.comp.other += t1.elapsed().as_secs_f64();

                        // Injected straggler: stall before compute.
                        if let Some(f) = faults {
                            if f.should_slow(task.id, lease.attempt) {
                                clock.sleep(f.slow_for);
                            }
                        }

                        // The compute loop, isolated under
                        // catch_unwind: a panicking fit — injected or
                        // real — fails this attempt instead of tearing
                        // down the campaign. (`celeste_par::scope`
                        // re-raises spawn panics here after the
                        // batch's other lists finish, so the pool
                        // itself survives.)
                        let t2 = Instant::now();
                        let image_refs: Vec<&celeste_survey::Image> =
                            images.iter().map(|a| a.as_ref()).collect();
                        let fit_outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if let Some(f) = faults {
                                    if f.should_panic(task.id, lease.attempt) {
                                        panic!(
                                            "injected fault: panic in task {} attempt {}",
                                            task.id, lease.attempt
                                        );
                                    }
                                }
                                process_region(
                                    &mut sources,
                                    &image_refs,
                                    &neighbors,
                                    priors,
                                    &cfg.fit,
                                    cfg.threads_per_node,
                                    task.id ^ 0x5eed,
                                )
                            }));
                        let dt = t2.elapsed().as_secs_f64();
                        let region_stats = match fit_outcome {
                            Ok(stats) => stats,
                            Err(payload) => {
                                for k in &keys {
                                    prefetcher.evict(k);
                                }
                                ledger.fail(&lease, RegionError::FitPanic(panic_message(payload)));
                                continue;
                            }
                        };

                        // Injected hang: stall past the lease deadline
                        // so the commit below arrives too late and is
                        // refused (the supervisor reissues the task).
                        if let Some(f) = faults {
                            if f.should_hang(task.id, lease.attempt) {
                                clock.sleep(cfg.retry.lease_timeout + cfg.retry.lease_timeout / 2);
                            }
                        }

                        // Commit point: results count only while the
                        // lease is current. A stale or expired lease
                        // discards everything — no PGAS writes, no
                        // emission — preserving exactly-once output.
                        let t3 = Instant::now();
                        if !ledger.complete(&lease) {
                            for k in &keys {
                                prefetcher.evict(k);
                            }
                            continue;
                        }
                        out.comp.task_processing += dt;
                        out.durations.push(dt);
                        out.works.push(task.predicted_work.max(1.0));

                        // Write back (PGAS puts).
                        for sp in &sources {
                            params.put(node, sp.id, &sp.params);
                        }
                        out.comp.other += t3.elapsed().as_secs_f64();
                        out.n_tasks += 1;
                        out.n_sources += sources.len();

                        // Streaming + durability surfaces: the
                        // committed task leaves the node the moment it
                        // is written back, not at campaign end. A
                        // closed channel (receiver dropped) just stops
                        // emission.
                        if sink.is_some() || checkpointer.is_some() {
                            let result = RegionResult {
                                task_id: task.id,
                                stage: task.stage,
                                node,
                                sources: sources.clone(),
                                stats: region_stats,
                                provenance: RegionProvenance {
                                    image_keys: keys.clone(),
                                    config_hash,
                                },
                            };
                            if let Some(ck) = &checkpointer {
                                if let Err(e) = ck.record(result.clone()) {
                                    fatal.lock().get_or_insert(CampaignError::Checkpoint(e));
                                    stop.store(true, Ordering::SeqCst);
                                }
                            }
                            if let Some(sink) = sink {
                                let _ = sink.send(result);
                            }
                        }

                        // Evict this task's images to bound memory.
                        for k in &keys {
                            prefetcher.evict(k);
                        }
                    }
                    node_end_times
                        .lock()
                        .push((node, t_stage.elapsed().as_secs_f64()));
                    results.lock().push(out);
                });
            }
        });

        // Load imbalance: idle time between each node's finish and the
        // slowest node's finish.
        let ends = node_end_times.lock();
        let t_last = ends.iter().map(|&(_, t)| t).fold(0.0_f64, f64::max);
        let mut idle_of = vec![0.0; cfg.n_nodes];
        for &(node, t) in ends.iter() {
            idle_of[node] = t_last - t;
        }
        for out in results.lock().drain(..) {
            per_node[out.node].add(&out.comp);
            per_node[out.node].load_imbalance += idle_of[out.node];
            task_durations.extend(out.durations);
            task_works.extend(out.works);
            image_load_durations.extend(out.loads);
            tasks_completed += out.n_tasks;
            sources_optimized += out.n_sources;
        }
        failed_regions.extend(ledger.failed_regions());
        let stats = ledger.stats();
        retries += stats.retries;
        leases_expired += stats.leases_expired;
        stale_results += stats.stale_completions;
    }

    // Final checkpoint flush (covers cancellation and `every` > 1).
    if let Some(ck) = &checkpointer {
        if let Err(e) = ck.flush() {
            fatal.lock().get_or_insert(CampaignError::Checkpoint(e));
        }
    }
    if let Some(e) = fatal.lock().take() {
        return Err(e);
    }
    let cancelled = cancel.is_cancelled() && tasks_completed + failed_regions.len() < tasks.len();

    let fitted = params.export();
    if !cancelled {
        // Write the fitted catalog back to storage (the paper's
        // "writing output to disk", part of the `other` component).
        // Cancelled runs skip publication: their durable state is the
        // checkpoint, not a partial output catalog.
        let t_out = Instant::now();
        let out_catalog =
            celeste_survey::Catalog::new(fitted.iter().map(|sp| sp.to_entry()).collect());
        store
            .save_catalog("celeste-output", &out_catalog)
            .map_err(CampaignError::Output)?;
        if let Some(first) = per_node.first_mut() {
            first.other += t_out.elapsed().as_secs_f64();
        }
    }

    let report = CampaignReport {
        per_node,
        makespan: t_campaign.elapsed().as_secs_f64(),
        tasks_completed,
        sources_optimized,
        task_durations,
        task_works,
        image_load_durations,
        active_pixel_visits: celeste_core::flops::visits(),
        failed_regions,
        retries,
        leases_expired,
        stale_results,
        tasks_restored,
        cancelled,
    };
    Ok((fitted, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_sky, PartitionConfig};
    use celeste_survey::priors::Priors;
    use celeste_survey::skygeom::GeometryConfig;
    use celeste_survey::synth::SurveyConfig;

    fn tiny_survey() -> SyntheticSurvey {
        SyntheticSurvey::generate(SurveyConfig {
            geometry: GeometryConfig {
                n_stripes: 1,
                fields_per_stripe: 2,
                deep_stripe: None,
                epochs_per_stripe: 1,
                ..GeometryConfig::default()
            },
            pixels_per_field: 64,
            source_density_per_sq_deg: 2500.0,
            ..SurveyConfig::default()
        })
    }

    #[test]
    fn campaign_runs_end_to_end() {
        let survey = tiny_survey();
        let dir = std::env::temp_dir().join(format!("celeste-campaign-{}", std::process::id()));
        let store = ImageStore::open(&dir).unwrap();
        let staged = stage_survey(&survey, &store);
        assert_eq!(staged, survey.geometry.fields.len() * 5);

        // Initialize from the *truth* catalog with perturbed fluxes
        // (the paper initializes from an earlier catalog).
        let mut init = survey.truth.clone();
        for e in &mut init.entries {
            e.flux_r_nmgy *= 0.7;
        }
        let tasks = partition_sky(
            &init,
            &survey.geometry.footprint,
            &PartitionConfig {
                target_work: 600.0,
                max_sources: 40,
                ..Default::default()
            },
        );
        assert!(tasks.len() >= 2, "want multiple tasks, got {}", tasks.len());

        let priors = ModelPriors::new(Priors::sdss_default());
        let fit = FitConfig {
            bca_passes: 1,
            newton: celeste_core::NewtonConfig {
                max_iters: 12,
                ..Default::default()
            },
            ..Default::default()
        };
        let cfg = CampaignConfig {
            n_nodes: 2,
            threads_per_node: 2,
            fit,
            ..Default::default()
        };
        let (fitted, report) = run_campaign(&survey, &store, &init, &tasks, &priors, &cfg);

        assert_eq!(fitted.len(), init.len());
        assert_eq!(report.tasks_completed, tasks.len());
        assert!(report.active_pixel_visits > 0);
        assert_eq!(report.per_node.len(), 2);
        assert!(report.makespan > 0.0);
        // Fault-free run: the resilience layer must be invisible.
        assert!(report.failed_regions.is_empty());
        assert_eq!(report.retries, 0);
        assert_eq!(report.leases_expired, 0);
        assert_eq!(report.stale_results, 0);
        assert!(!report.cancelled);
        // Component accounting: per-node totals are positive and the
        // processing component dominates I/O for this compute-bound
        // workload.
        let mean = report.mean_components();
        assert!(mean.task_processing > 0.0);
        // Fluxes moved toward truth for bright sources.
        let bright: Vec<usize> = survey
            .truth
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.flux_r_nmgy > 10.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!bright.is_empty());
        let mut improved = 0;
        for &i in &bright {
            let truth_f = survey.truth.entries[i].flux_r_nmgy;
            let init_f = init.entries[i].flux_r_nmgy;
            let fit_f = fitted[i].to_entry().flux_r_nmgy;
            if (fit_f - truth_f).abs() < (init_f - truth_f).abs() {
                improved += 1;
            }
        }
        assert!(
            improved * 3 >= bright.len() * 2,
            "only {improved}/{} bright sources improved",
            bright.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
