//! End-to-end campaign driver: the whole paper pipeline on one machine.
//!
//! Simulated "nodes" are scoped tasks on the shared `celeste-par`
//! executor that pop region tasks from a [`crate::dtree::Dtree`],
//! stage their images through a prefetching loader (the Burst Buffer
//! path), jointly optimize the region's sources with Cyclades worker
//! spawns on the same executor, and write results back to the PGAS
//! store. Runtime is decomposed into the paper's four components
//! (§VII-C): *image loading* (first-task blocking waits), *task
//! processing* (the compute loop), *load imbalance* (idle after the
//! queue drains), and *other* (scheduling, parameter I/O, output).
//!
//! The per-task duration samples this driver measures are what
//! calibrate the petascale discrete-event simulator in
//! `celeste-cluster`.

use crate::dtree::Dtree;
use crate::partition::RegionTask;
use crate::pgas::ParamStore;
use crate::runtime::{process_region, RegionStats};
use celeste_core::{FitConfig, ModelPriors, SourceParams};
use celeste_survey::bands::Band;
use celeste_survey::io::{ImageKey, ImageStore, IoError, Prefetcher};
use celeste_survey::synth::SyntheticSurvey;
use celeste_survey::Catalog;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// An IO failure during a campaign, with where in the pipeline it
/// happened. The fallible drivers ([`try_run_campaign`],
/// [`run_campaign_streaming`], [`try_stage_survey`]) return these;
/// the legacy [`run_campaign`] / [`stage_survey`] wrappers panic.
#[derive(Debug)]
pub enum CampaignError {
    /// Writing an image into the store during staging failed.
    Staging {
        /// The (field, band) that failed to stage.
        key: ImageKey,
        /// The underlying store error.
        source: IoError,
    },
    /// A node's blocking image fetch failed mid-campaign.
    ImageLoad {
        /// The (field, band) that failed to load.
        key: ImageKey,
        /// The underlying store error.
        source: IoError,
    },
    /// Writing the fitted output catalog failed.
    Output(IoError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Staging { key, source } => {
                write!(f, "staging image {:?}/{} failed: {source}", key.0, key.1)
            }
            CampaignError::ImageLoad { key, source } => {
                write!(f, "loading image {:?}/{} failed: {source}", key.0, key.1)
            }
            CampaignError::Output(source) => write!(f, "writing output catalog failed: {source}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Staging { source, .. }
            | CampaignError::ImageLoad { source, .. }
            | CampaignError::Output(source) => Some(source),
        }
    }
}

/// One finished region task, as emitted on the streaming path while
/// the campaign is still running: the fitted parameters of every
/// source in the task plus the region-level optimizer statistics.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// The [`RegionTask::id`] this result belongs to.
    pub task_id: u64,
    /// Partition stage (0 = primary, 1 = shifted boundary pass).
    pub stage: u8,
    /// The simulated node that processed the task.
    pub node: usize,
    /// Fitted parameters for every source in the task, in task order.
    pub sources: Vec<SourceParams>,
    /// Cyclades optimizer statistics for the region.
    pub stats: RegionStats,
}

/// Where streaming campaign drivers emit [`RegionResult`]s: the
/// sending half of a crossbeam MPMC channel, so results can be
/// consumed, checkpointed, or served while later tasks still compute.
pub type RegionSink = crossbeam::channel::Sender<RegionResult>;

/// The four runtime components of Figs. 4–5.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTimes {
    pub image_loading: f64,
    pub task_processing: f64,
    pub load_imbalance: f64,
    pub other: f64,
}

impl ComponentTimes {
    pub fn total(&self) -> f64 {
        self.image_loading + self.task_processing + self.load_imbalance + self.other
    }

    pub fn add(&mut self, o: &ComponentTimes) {
        self.image_loading += o.image_loading;
        self.task_processing += o.task_processing;
        self.load_imbalance += o.load_imbalance;
        self.other += o.other;
    }
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Simulated compute nodes (each is one scheduler task on the
    /// executor).
    pub n_nodes: usize,
    /// Cyclades batch width per node (component lists per batch;
    /// actual parallelism is bounded by the executor pool).
    pub threads_per_node: usize,
    /// Prefetcher I/O threads (shared across nodes — the Burst Buffer).
    pub prefetch_workers: usize,
    /// Dtree fanout.
    pub dtree_fanout: usize,
    pub fit: FitConfig,
}

impl Default for CampaignConfig {
    /// Node and thread counts default to the single `CELESTE_THREADS`
    /// knob (available parallelism when unset) instead of ad-hoc
    /// constants, so one setting sizes the whole stack.
    fn default() -> Self {
        let threads = celeste_par::configured_threads();
        CampaignConfig {
            n_nodes: threads.min(2),
            threads_per_node: threads,
            prefetch_workers: threads.max(2),
            dtree_fanout: 4,
            fit: FitConfig::default(),
        }
    }
}

/// Measured results of a campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    pub per_node: Vec<ComponentTimes>,
    /// Wall-clock of the whole campaign, seconds.
    pub makespan: f64,
    pub tasks_completed: usize,
    pub sources_optimized: usize,
    /// Per-task processing durations, seconds (simulator calibration).
    pub task_durations: Vec<f64>,
    /// Predicted work of each task (aligned with `task_durations`),
    /// used to normalize durations when calibrating the simulator.
    pub task_works: Vec<f64>,
    /// Per-image blocking-load durations, seconds.
    pub image_load_durations: Vec<f64>,
    /// Active-pixel visits during the run.
    pub active_pixel_visits: u64,
}

impl CampaignReport {
    /// Mean component times across nodes (the stacked bars of Fig. 4).
    pub fn mean_components(&self) -> ComponentTimes {
        let mut total = ComponentTimes::default();
        for c in &self.per_node {
            total.add(c);
        }
        let n = self.per_node.len().max(1) as f64;
        ComponentTimes {
            image_loading: total.image_loading / n,
            task_processing: total.task_processing / n,
            load_imbalance: total.load_imbalance / n,
            other: total.other / n,
        }
    }
}

/// Write every survey image into `store` (staging the campaign data,
/// i.e. the paper's Lustre → Burst Buffer step). Panics if the store
/// is unwritable; the non-panicking form is [`try_stage_survey`].
pub fn stage_survey(survey: &SyntheticSurvey, store: &ImageStore) -> usize {
    try_stage_survey(survey, store).expect("stage image")
}

/// [`stage_survey`] with store failures reported as a
/// [`CampaignError::Staging`] carrying the offending (field, band)
/// instead of a panic. Returns the number of images staged.
pub fn try_stage_survey(
    survey: &SyntheticSurvey,
    store: &ImageStore,
) -> Result<usize, CampaignError> {
    use rayon::prelude::*;
    let jobs: Vec<(usize, Band)> = (0..survey.geometry.fields.len())
        .flat_map(|i| Band::ALL.iter().map(move |&b| (i, b)))
        .collect();
    let results: Vec<Result<(), CampaignError>> = jobs
        .par_iter()
        .map(|&(i, band)| {
            let field = &survey.geometry.fields[i];
            let img = survey.render_field(field, band);
            store.save(&img).map_err(|source| CampaignError::Staging {
                key: (field.id, band),
                source,
            })
        })
        .collect();
    let n = results.len();
    for r in results {
        r?;
    }
    Ok(n)
}

/// Image keys a task needs: every (field, band) whose footprint
/// intersects the (padded) region.
pub fn task_image_keys(survey: &SyntheticSurvey, task: &RegionTask) -> Vec<ImageKey> {
    let padded = task.rect.padded(20.0 / 3600.0);
    survey
        .geometry
        .fields_intersecting(&padded)
        .into_iter()
        .flat_map(|f| Band::ALL.iter().map(move |&b| (f.id, b)))
        .collect()
}

/// Run a full campaign: both partition stages, Dtree-scheduled across
/// `cfg.n_nodes` node threads. Returns the final catalog parameters
/// and the measured report. Panics on IO failure; the non-panicking
/// forms are [`try_run_campaign`] and [`run_campaign_streaming`].
pub fn run_campaign(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
) -> (Vec<SourceParams>, CampaignReport) {
    campaign_inner(survey, store, init_catalog, tasks, priors, cfg, None)
        .unwrap_or_else(|e| panic!("run_campaign: {e}"))
}

/// [`run_campaign`] with IO failures reported as [`CampaignError`]s
/// instead of panics.
pub fn try_run_campaign(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
) -> Result<(Vec<SourceParams>, CampaignReport), CampaignError> {
    campaign_inner(survey, store, init_catalog, tasks, priors, cfg, None)
}

/// [`try_run_campaign`], additionally emitting a [`RegionResult`] into
/// `sink` the moment each Dtree task finishes — partial catalogs are
/// consumable mid-campaign from the channel's receiving half while
/// later tasks still compute. A dropped receiver does not stop the
/// campaign; emission is simply skipped. The returned parameters are
/// bit-identical to [`run_campaign`]'s: streaming observes the run,
/// it does not alter it.
pub fn run_campaign_streaming(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
    sink: &RegionSink,
) -> Result<(Vec<SourceParams>, CampaignReport), CampaignError> {
    campaign_inner(survey, store, init_catalog, tasks, priors, cfg, Some(sink))
}

/// Everything a node hands back to the coordinator after draining its
/// share of a stage's Dtree.
struct NodeOutcome {
    node: usize,
    comp: ComponentTimes,
    durations: Vec<f64>,
    works: Vec<f64>,
    loads: Vec<f64>,
    n_tasks: usize,
    n_sources: usize,
    /// First IO failure the node hit (it stops popping tasks after).
    error: Option<CampaignError>,
}

fn campaign_inner(
    survey: &SyntheticSurvey,
    store: &ImageStore,
    init_catalog: &Catalog,
    tasks: &[RegionTask],
    priors: &ModelPriors,
    cfg: &CampaignConfig,
    sink: Option<&RegionSink>,
) -> Result<(Vec<SourceParams>, CampaignReport), CampaignError> {
    let t_campaign = Instant::now();
    celeste_core::flops::reset_visits();

    // PGAS store holds every source, partitioned across nodes.
    let params = Arc::new(ParamStore::new(cfg.n_nodes));
    for e in &init_catalog.entries {
        params.insert(SourceParams::init_from_entry(e));
    }
    let id_of: Vec<u64> = init_catalog.entries.iter().map(|e| e.id).collect();

    let prefetcher = Arc::new(Prefetcher::new(store.clone(), cfg.prefetch_workers));
    let mut per_node = vec![ComponentTimes::default(); cfg.n_nodes];
    let mut task_durations = Vec::new();
    let mut task_works = Vec::new();
    let mut image_load_durations = Vec::new();
    let mut tasks_completed = 0usize;
    let mut sources_optimized = 0usize;

    // Stage barriers: all stage-0 tasks complete before stage-1 begins
    // (paper §IV-A).
    for stage in 0..=1u8 {
        let stage_tasks: Vec<&RegionTask> = tasks.iter().filter(|t| t.stage == stage).collect();
        if stage_tasks.is_empty() {
            continue;
        }
        let dtree = Arc::new(Dtree::new(
            cfg.n_nodes,
            cfg.dtree_fanout,
            (0..stage_tasks.len()).collect::<Vec<usize>>(),
        ));
        let results: Arc<Mutex<Vec<NodeOutcome>>> = Arc::new(Mutex::new(Vec::new()));
        let node_end_times: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let t_stage = Instant::now();

        // Node loop: scoped spawns on the shared executor. A node
        // task's nested Cyclades scope spawns land on the same pool,
        // and a node blocked on a prefetch wait frees its worker's
        // queue to thieves.
        celeste_par::scope(|s| {
            for node in 0..cfg.n_nodes {
                let dtree = Arc::clone(&dtree);
                let prefetcher = Arc::clone(&prefetcher);
                let params = Arc::clone(&params);
                let results = Arc::clone(&results);
                let node_end_times = Arc::clone(&node_end_times);
                let stage_tasks = &stage_tasks;
                let id_of = &id_of;
                s.spawn(move || {
                    let mut out = NodeOutcome {
                        node,
                        comp: ComponentTimes::default(),
                        durations: Vec::new(),
                        works: Vec::new(),
                        loads: Vec::new(),
                        n_tasks: 0,
                        n_sources: 0,
                        error: None,
                    };
                    let mut first_task = true;

                    let mut next = dtree.pop(node);
                    if let Some(i) = next {
                        prefetcher.request(&task_image_keys(survey, stage_tasks[i]));
                    }
                    while let Some(task_idx) = next {
                        let task = stage_tasks[task_idx];
                        // Pop + prefetch the following task before
                        // computing this one (hides its image loads).
                        next = dtree.pop(node);
                        if let Some(i) = next {
                            prefetcher.request(&task_image_keys(survey, stage_tasks[i]));
                        }

                        // Blocking image fetch for the current task.
                        // A failed load stops this node (the rest of
                        // the fleet keeps draining the Dtree); the
                        // coordinator reports the first failure.
                        let t0 = Instant::now();
                        let keys = task_image_keys(survey, task);
                        let mut images: Vec<Arc<celeste_survey::Image>> =
                            Vec::with_capacity(keys.len());
                        for k in &keys {
                            match prefetcher.get(k) {
                                Ok(img) => images.push(img),
                                Err(source) => {
                                    out.error = Some(CampaignError::ImageLoad { key: *k, source });
                                    break;
                                }
                            }
                        }
                        if out.error.is_some() {
                            break;
                        }
                        let wait = t0.elapsed().as_secs_f64();
                        out.loads.push(wait);
                        if first_task {
                            out.comp.image_loading += wait;
                            first_task = false;
                        } else {
                            out.comp.other += wait;
                        }

                        // Fetch parameters (PGAS gets) for the region
                        // and nearby fixed neighbors.
                        let t1 = Instant::now();
                        let mut sources = params.load_task(node, task, id_of);
                        let neighbor_rect = task.rect.padded(15.0 / 3600.0);
                        let neighbor_ids: Vec<u64> = init_catalog
                            .entries
                            .iter()
                            .enumerate()
                            .filter(|(i, e)| {
                                !task.source_indices.contains(i) && neighbor_rect.contains(&e.pos)
                            })
                            .map(|(_, e)| e.id)
                            .collect();
                        let neighbors = params.get_many(node, &neighbor_ids);
                        out.comp.other += t1.elapsed().as_secs_f64();

                        // The compute loop.
                        let t2 = Instant::now();
                        let image_refs: Vec<&celeste_survey::Image> =
                            images.iter().map(|a| a.as_ref()).collect();
                        let region_stats = process_region(
                            &mut sources,
                            &image_refs,
                            &neighbors,
                            priors,
                            &cfg.fit,
                            cfg.threads_per_node,
                            task.id ^ 0x5eed,
                        );
                        let dt = t2.elapsed().as_secs_f64();
                        out.comp.task_processing += dt;
                        out.durations.push(dt);
                        out.works.push(task.predicted_work.max(1.0));

                        // Write back (PGAS puts).
                        let t3 = Instant::now();
                        for sp in &sources {
                            params.put(node, sp.id, &sp.params);
                        }
                        out.comp.other += t3.elapsed().as_secs_f64();
                        out.n_tasks += 1;
                        out.n_sources += sources.len();

                        // Streaming surface: the finished task leaves
                        // the node the moment it is written back, not
                        // at campaign end. A closed channel (receiver
                        // dropped) just stops emission.
                        if let Some(sink) = sink {
                            let _ = sink.send(RegionResult {
                                task_id: task.id,
                                stage: task.stage,
                                node,
                                sources: sources.clone(),
                                stats: region_stats,
                            });
                        }

                        // Evict this task's images to bound memory.
                        for k in &keys {
                            prefetcher.evict(k);
                        }
                    }
                    node_end_times
                        .lock()
                        .push((node, t_stage.elapsed().as_secs_f64()));
                    results.lock().push(out);
                });
            }
        });

        // Load imbalance: idle time between each node's finish and the
        // slowest node's finish.
        let ends = node_end_times.lock();
        let t_last = ends.iter().map(|&(_, t)| t).fold(0.0_f64, f64::max);
        let mut idle_of = vec![0.0; cfg.n_nodes];
        for &(node, t) in ends.iter() {
            idle_of[node] = t_last - t;
        }
        let mut first_error = None;
        for out in results.lock().drain(..) {
            per_node[out.node].add(&out.comp);
            per_node[out.node].load_imbalance += idle_of[out.node];
            task_durations.extend(out.durations);
            task_works.extend(out.works);
            image_load_durations.extend(out.loads);
            tasks_completed += out.n_tasks;
            sources_optimized += out.n_sources;
            if let Some(e) = out.error {
                first_error.get_or_insert(e);
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
    }

    // Write the fitted catalog back to storage (the paper's "writing
    // output to disk", part of the `other` component).
    let t_out = Instant::now();
    let fitted = params.export();
    let out_catalog = celeste_survey::Catalog::new(fitted.iter().map(|sp| sp.to_entry()).collect());
    store
        .save_catalog("celeste-output", &out_catalog)
        .map_err(CampaignError::Output)?;
    if let Some(first) = per_node.first_mut() {
        first.other += t_out.elapsed().as_secs_f64();
    }

    let report = CampaignReport {
        per_node,
        makespan: t_campaign.elapsed().as_secs_f64(),
        tasks_completed,
        sources_optimized,
        task_durations,
        task_works,
        image_load_durations,
        active_pixel_visits: celeste_core::flops::visits(),
    };
    Ok((fitted, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_sky, PartitionConfig};
    use celeste_survey::priors::Priors;
    use celeste_survey::skygeom::GeometryConfig;
    use celeste_survey::synth::SurveyConfig;

    fn tiny_survey() -> SyntheticSurvey {
        SyntheticSurvey::generate(SurveyConfig {
            geometry: GeometryConfig {
                n_stripes: 1,
                fields_per_stripe: 2,
                deep_stripe: None,
                epochs_per_stripe: 1,
                ..GeometryConfig::default()
            },
            pixels_per_field: 64,
            source_density_per_sq_deg: 2500.0,
            ..SurveyConfig::default()
        })
    }

    #[test]
    fn campaign_runs_end_to_end() {
        let survey = tiny_survey();
        let dir = std::env::temp_dir().join(format!("celeste-campaign-{}", std::process::id()));
        let store = ImageStore::open(&dir).unwrap();
        let staged = stage_survey(&survey, &store);
        assert_eq!(staged, survey.geometry.fields.len() * 5);

        // Initialize from the *truth* catalog with perturbed fluxes
        // (the paper initializes from an earlier catalog).
        let mut init = survey.truth.clone();
        for e in &mut init.entries {
            e.flux_r_nmgy *= 0.7;
        }
        let tasks = partition_sky(
            &init,
            &survey.geometry.footprint,
            &PartitionConfig {
                target_work: 600.0,
                max_sources: 40,
                ..Default::default()
            },
        );
        assert!(tasks.len() >= 2, "want multiple tasks, got {}", tasks.len());

        let priors = ModelPriors::new(Priors::sdss_default());
        let fit = FitConfig {
            bca_passes: 1,
            newton: celeste_core::NewtonConfig {
                max_iters: 12,
                ..Default::default()
            },
            ..Default::default()
        };
        let cfg = CampaignConfig {
            n_nodes: 2,
            threads_per_node: 2,
            fit,
            ..Default::default()
        };
        let (fitted, report) = run_campaign(&survey, &store, &init, &tasks, &priors, &cfg);

        assert_eq!(fitted.len(), init.len());
        assert_eq!(report.tasks_completed, tasks.len());
        assert!(report.active_pixel_visits > 0);
        assert_eq!(report.per_node.len(), 2);
        assert!(report.makespan > 0.0);
        // Component accounting: per-node totals are positive and the
        // processing component dominates I/O for this compute-bound
        // workload.
        let mean = report.mean_components();
        assert!(mean.task_processing > 0.0);
        // Fluxes moved toward truth for bright sources.
        let bright: Vec<usize> = survey
            .truth
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.flux_r_nmgy > 10.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!bright.is_empty());
        let mut improved = 0;
        for &i in &bright {
            let truth_f = survey.truth.entries[i].flux_r_nmgy;
            let init_f = init.entries[i].flux_r_nmgy;
            let fit_f = fitted[i].to_entry().flux_r_nmgy;
            if (fit_f - truth_f).abs() < (init_f - truth_f).abs() {
                improved += 1;
            }
        }
        assert!(
            improved * 3 >= bright.len() * 2,
            "only {improved}/{} bright sources improved",
            bright.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
