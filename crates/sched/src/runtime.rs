//! Node-level parallel region processing (Cyclades threads).
//!
//! "Multiple threads then coordinate to jointly optimize the light
//! sources for the current task … threads coordinate their work
//! through the Cyclades approach" (§IV-D). Each Cyclades batch is
//! processed by scoped worker threads; connected components of the
//! sampled conflict graph never straddle threads, so every 44-block
//! Newton update is a valid serial block-coordinate-ascent step.

use crate::cyclades::{conflict_graph, sample_batches};
use celeste_core::{fit_source, FitConfig, ModelPriors, SourceParams, SourceProblem};
use celeste_survey::Image;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Statistics from processing one region.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionStats {
    pub passes: usize,
    pub batches: usize,
    pub fits: usize,
    pub newton_iters: usize,
    pub conflict_edges: usize,
    pub active_pixels: usize,
}

/// Jointly optimize `sources` against `images` with `n_threads`
/// Cyclades worker threads. Sources outside this region (their
/// contribution to pixel backgrounds) should already be folded into
/// the images' neighbor handling by the caller passing them in
/// `fixed_neighbors`.
pub fn process_region(
    sources: &mut [SourceParams],
    images: &[&Image],
    fixed_neighbors: &[SourceParams],
    priors: &ModelPriors,
    fit_cfg: &FitConfig,
    n_threads: usize,
    seed: u64,
) -> RegionStats {
    let mut stats = RegionStats::default();
    if sources.is_empty() {
        return stats;
    }
    // Conflict radius: a few PSF widths in arcsec.
    let psf_radius_arcsec = images
        .iter()
        .map(|img| {
            let s = img.psf.components.iter().map(|c| c.sigma_px).fold(0.0_f64, f64::max);
            3.0 * s * img.wcs.pixel_scale_arcsec()
        })
        .fold(6.0_f64, f64::max);
    let mut rng = StdRng::seed_from_u64(seed);

    for pass in 0..fit_cfg.bca_passes {
        stats.passes += 1;
        let graph = conflict_graph(sources, psf_radius_arcsec);
        stats.conflict_edges = graph.edges;
        let batch_size = (sources.len() / 2).max(4 * n_threads).max(1);
        let batches = sample_batches(&mut rng, &graph, n_threads, batch_size);
        let _ = pass;
        for batch in batches {
            stats.batches += 1;
            // Snapshot of the whole region for neighbor subtraction:
            // conflict freedom guarantees concurrently-updated sources
            // do not overlap, so the snapshot is exact for every
            // overlapping neighbor.
            let snapshot: Vec<SourceParams> = sources.to_vec();
            let results: Vec<(usize, SourceParams, usize, usize)> = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for thread_list in batch.iter().filter(|l| !l.is_empty()) {
                    let snapshot = &snapshot;
                    let handle = s.spawn(move || {
                        let mut out = Vec::new();
                        for &idx in thread_list {
                            let mut sp = snapshot[idx].clone();
                            let others: Vec<&SourceParams> = snapshot
                                .iter()
                                .enumerate()
                                .filter(|(j, _)| *j != idx)
                                .map(|(_, o)| o)
                                .chain(fixed_neighbors.iter())
                                .collect();
                            let problem =
                                SourceProblem::build(&sp, images, &others, priors, fit_cfg);
                            if problem.blocks.is_empty() {
                                continue;
                            }
                            let mut one_fit = *fit_cfg;
                            one_fit.bca_passes = 1;
                            let fs = fit_source(&mut sp, &problem, &one_fit);
                            out.push((idx, sp, fs.newton.iterations, fs.active_pixels));
                        }
                        out
                    });
                    handles.push(handle);
                }
                handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
            });
            for (idx, sp, iters, pixels) in results {
                sources[idx] = sp;
                stats.fits += 1;
                stats.newton_iters += iters;
                stats.active_pixels += pixels;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::bands::Band;
    use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::render::render_observed;
    use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
    use celeste_survey::wcs::Wcs;
    use celeste_survey::Priors;

    fn scene() -> (Catalog, Vec<Image>) {
        let entries: Vec<CatalogEntry> = (0..6)
            .map(|i| CatalogEntry {
                id: i,
                pos: SkyCoord::new(0.004 + 0.004 * i as f64, 0.012),
                source_type: SourceType::Star,
                flux_r_nmgy: 10.0 + 3.0 * i as f64,
                colors: [0.4, 0.2, 0.1, 0.05],
                shape: GalaxyShape::round_disk(1.0),
            })
            .collect();
        let truth = Catalog::new(entries);
        let rect = SkyRect::new(0.0, 0.03, 0.0, 0.03);
        let images: Vec<Image> = [Band::R, Band::G]
            .iter()
            .map(|&band| {
                let mut img = Image::blank(
                    FieldId { run: 1, camcol: 1, field: 0 },
                    band,
                    Wcs::for_rect(&rect, 80, 80),
                    80,
                    80,
                    140.0,
                    300.0,
                    Psf::core_halo(1.3),
                );
                render_observed(&truth, &mut img, 31 + band.index() as u64);
                img
            })
            .collect();
        (truth, images)
    }

    #[test]
    fn parallel_region_fits_all_sources() {
        let (truth, images) = scene();
        let refs: Vec<&Image> = images.iter().collect();
        let mut sources: Vec<SourceParams> = truth
            .entries
            .iter()
            .map(|e| {
                let mut init = e.clone();
                init.flux_r_nmgy *= 0.5; // start misestimated
                SourceParams::init_from_entry(&init)
            })
            .collect();
        let priors = ModelPriors::new(Priors::sdss_default());
        let cfg = FitConfig { bca_passes: 2, ..Default::default() };
        let stats =
            process_region(&mut sources, &refs, &[], &priors, &cfg, 3, 17);
        assert_eq!(stats.passes, 2);
        assert!(stats.fits >= sources.len(), "fits {}", stats.fits);
        for (sp, truth_e) in sources.iter().zip(&truth.entries) {
            let got = sp.to_entry().flux_r_nmgy;
            let want = truth_e.flux_r_nmgy;
            assert!(
                (got - want).abs() / want < 0.2,
                "source {}: flux {got} vs {want}",
                sp.id
            );
        }
    }

    #[test]
    fn parallel_matches_serial_quality() {
        let (truth, images) = scene();
        let refs: Vec<&Image> = images.iter().collect();
        let priors = ModelPriors::new(Priors::sdss_default());
        let cfg = FitConfig { bca_passes: 2, ..Default::default() };

        let init = |truth: &Catalog| -> Vec<SourceParams> {
            truth
                .entries
                .iter()
                .map(|e| {
                    let mut i = e.clone();
                    i.flux_r_nmgy *= 0.6;
                    SourceParams::init_from_entry(&i)
                })
                .collect()
        };
        let mut par = init(&truth);
        process_region(&mut par, &refs, &[], &priors, &cfg, 4, 5);
        let mut ser = init(&truth);
        celeste_core::optimize_sources(&mut ser, &refs, &priors, &cfg);
        // Same truth recovery within tolerance (not bitwise: different
        // update orders).
        for (a, b) in par.iter().zip(&ser) {
            let fa = a.to_entry().flux_r_nmgy;
            let fb = b.to_entry().flux_r_nmgy;
            assert!(
                (fa - fb).abs() / fb < 0.1,
                "parallel {fa} vs serial {fb} for source {}",
                a.id
            );
        }
    }

    #[test]
    fn empty_region_is_a_noop() {
        let (_, images) = scene();
        let refs: Vec<&Image> = images.iter().collect();
        let priors = ModelPriors::new(Priors::sdss_default());
        let mut none: Vec<SourceParams> = Vec::new();
        let stats = process_region(
            &mut none,
            &refs,
            &[],
            &priors,
            &FitConfig::default(),
            4,
            0,
        );
        assert_eq!(stats.fits, 0);
    }
}
