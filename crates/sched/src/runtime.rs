//! Node-level parallel region processing (Cyclades threads).
//!
//! "Multiple threads then coordinate to jointly optimize the light
//! sources for the current task … threads coordinate their work
//! through the Cyclades approach" (§IV-D). Region processing runs on
//! the shared `celeste-par` work-stealing executor: each Cyclades
//! batch becomes one scoped spawn per component list, and because
//! connected components of the sampled conflict graph never straddle
//! lists — and each list executes serially on whichever worker picks
//! it up — every 44-block Newton update remains a valid serial
//! block-coordinate-ascent step.
//!
//! The executor's workers are persistent for the process lifetime, so
//! each keeps one Newton evaluation workspace (gradient/Hessian
//! buffers, prepared appearance mixtures, and the trust-region
//! solver's eigen scratch) plus one problem-assembly scratch in
//! thread-local storage, built once ever and reused across every fit
//! the worker performs in any region: steady-state optimization does
//! no thread spawning and no heap allocation anywhere in a fit's
//! Newton loop.
//!
//! Workers read source parameters from a plain snapshot borrowed for
//! the duration of the batch (the scope joins before the coordinator
//! continues); between batches only the sources fitted since the last
//! refresh are written back.
//!
//! Within a component list, problem assembly and fitting form a
//! two-stage software pipeline: while the owning worker runs the
//! Newton solve for source k, the assembly of source k+1 sits on its
//! deque as a stealable `celeste_par::join` job, so an otherwise-idle
//! worker overlaps it with the fit. Assembly reads only the immutable
//! batch snapshot and fits still execute serially in list order, so
//! the output is bit-identical to the unpipelined schedule at any
//! thread count.

use crate::cyclades::{conflict_graph, overlap_radius_arcsec, sample_batches, ConflictGraph};
use celeste_core::{
    fit_source_with, source_workspace, BuildScratch, FitConfig, ModelPriors, SourceParams,
    SourceProblem, SourceWorkspace,
};
use celeste_survey::Image;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// Statistics from processing one region.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionStats {
    pub passes: usize,
    pub batches: usize,
    pub fits: usize,
    pub newton_iters: usize,
    pub conflict_edges: usize,
    pub active_pixels: usize,
    /// Times the conflict graph was (re)built (once per region unless
    /// fitted positions/extents drift past the rebuild threshold).
    pub graph_builds: usize,
}

/// Per-source outcome written by a worker into its batch slot.
/// `source` is `None` when the subproblem had no active pixels
/// (nothing to fit) — the coordinator still needs the entry to
/// account for the index.
struct FitResult {
    idx: usize,
    source: Option<SourceParams>,
    newton_iters: usize,
    active_pixels: usize,
}

/// Per-executor-worker fit state: one Newton evaluation workspace and
/// one problem-assembly scratch, built on first use and reused for
/// every fit that worker ever performs (the executor's workers are
/// persistent, so this is once per process per thread).
struct FitState {
    ws: SourceWorkspace,
    build: BuildScratch,
}

thread_local! {
    static FIT_STATE: RefCell<Option<FitState>> = const { RefCell::new(None) };
}

/// Run `f` with the calling worker's fit state (creating it on first
/// use). The borrow must last only for one assembly or one fit —
/// never across a `celeste_par::join`: a worker waiting on a stolen
/// job executes other pipeline stages, which take this same RefCell.
fn with_fit_state<R>(f: impl FnOnce(&mut FitState) -> R) -> R {
    FIT_STATE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let state = slot.get_or_insert_with(|| FitState {
            ws: source_workspace(),
            build: BuildScratch::default(),
        });
        f(state)
    })
}

/// A source's subproblem, assembled and ready to fit. `SourceProblem`
/// owns its blocks (the worker's `BuildScratch` is only reused
/// internally), so an `Assembled` moves freely between the worker
/// that built it and the worker that fits it.
struct Assembled {
    sp: SourceParams,
    problem: SourceProblem,
}

/// Assembly stage of the fit pipeline: snapshot-read, borrow the
/// executing worker's build scratch for the duration of one
/// `build_with`, release it before returning.
fn assemble_source(
    snap: &[SourceParams],
    idx: usize,
    images: &[&Image],
    fixed_neighbors: &[SourceParams],
    priors: &ModelPriors,
    fit_cfg: &FitConfig,
) -> Assembled {
    let sp = snap[idx].clone();
    let others: Vec<&SourceParams> = snap
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != idx)
        .map(|(_, o)| o)
        .chain(fixed_neighbors.iter())
        .collect();
    let problem = with_fit_state(|state| {
        SourceProblem::build_with(&sp, images, &others, priors, fit_cfg, &mut state.build)
    });
    Assembled { sp, problem }
}

/// Fit stage of the pipeline: consumes an [`Assembled`], borrowing
/// the executing worker's Newton workspace only while the solve runs.
fn fit_assembled(idx: usize, assembled: Assembled, fit_cfg: &FitConfig) -> FitResult {
    let Assembled { mut sp, problem } = assembled;
    if problem.blocks.is_empty() {
        FitResult {
            idx,
            source: None,
            newton_iters: 0,
            active_pixels: 0,
        }
    } else {
        let fs = with_fit_state(|state| fit_source_with(&mut sp, &problem, fit_cfg, &mut state.ws));
        FitResult {
            idx,
            source: Some(sp),
            newton_iters: fs.newton.iterations,
            active_pixels: fs.active_pixels,
        }
    }
}

/// Rebuild the conflict graph when any source's fitted position or
/// overlap extent has drifted by more than this many arcsec since the
/// graph was built. Conflict radii are several arcsec (PSF + galaxy
/// extent), so a fraction of an arcsec keeps the graph conservative
/// while making rebuilds rare in steady state.
const GRAPH_DRIFT_ARCSEC: f64 = 0.5;

/// The conflict graph plus the state it was built from, for cheap
/// drift checks across passes.
struct GraphCache {
    graph: ConflictGraph,
    /// (position at build, conflict radius at build) per source. The
    /// radius is the same [`overlap_radius_arcsec`] the graph edges
    /// use, so drift checks see everything the edges see — including
    /// a star→galaxy reclassification suddenly adding galaxy extent.
    built_state: Vec<(celeste_survey::skygeom::SkyCoord, f64)>,
}

impl GraphCache {
    fn build(sources: &[SourceParams], psf_radius_arcsec: f64) -> GraphCache {
        GraphCache {
            graph: conflict_graph(sources, psf_radius_arcsec),
            built_state: sources
                .iter()
                .map(|s| (s.position(), overlap_radius_arcsec(s, psf_radius_arcsec)))
                .collect(),
        }
    }

    /// Whether any source drifted beyond [`GRAPH_DRIFT_ARCSEC`]:
    /// position movement plus conflict-radius change both eat into
    /// the same edge margin, so their sum is the drift measure.
    fn stale(&self, sources: &[SourceParams], psf_radius_arcsec: f64) -> bool {
        sources
            .iter()
            .zip(&self.built_state)
            .any(|(s, (pos0, r0))| {
                s.position().sep_arcsec(pos0)
                    + (overlap_radius_arcsec(s, psf_radius_arcsec) - r0).abs()
                    > GRAPH_DRIFT_ARCSEC
            })
    }
}

/// Jointly optimize `sources` against `images` with Cyclades batches
/// `n_threads` component-lists wide, executed on the shared
/// `celeste-par` pool (actual parallelism is the minimum of
/// `n_threads` and the pool width — `CELESTE_THREADS` by default).
/// Sources outside this region (their contribution to pixel
/// backgrounds) should already be folded into the images' neighbor
/// handling by the caller passing them in `fixed_neighbors`.
///
/// # Panics
///
/// A panic in any per-source fit propagates out of the Cyclades
/// scope (`celeste_par::scope` re-raises the first spawn panic after
/// the others finish; the pool itself survives). The campaign runner
/// wraps this call in `catch_unwind` at the node boundary, converting
/// the panic into a typed `RegionError::FitPanic` that feeds the
/// lease retry/quarantine machinery, so one poisoned region cannot
/// take down a campaign.
pub fn process_region(
    sources: &mut [SourceParams],
    images: &[&Image],
    fixed_neighbors: &[SourceParams],
    priors: &ModelPriors,
    fit_cfg: &FitConfig,
    n_threads: usize,
    seed: u64,
) -> RegionStats {
    let mut stats = RegionStats::default();
    if sources.is_empty() {
        return stats;
    }
    // Conflict radius: a few PSF widths in arcsec.
    let psf_radius_arcsec = images
        .iter()
        .map(|img| {
            let s = img
                .psf
                .components
                .iter()
                .map(|c| c.sigma_px)
                .fold(0.0_f64, f64::max);
            3.0 * s * img.wcs.pixel_scale_arcsec()
        })
        .fold(6.0_f64, f64::max);
    let mut rng = StdRng::seed_from_u64(seed);
    let n_threads = n_threads.max(1);

    // The conflict graph is pass-invariant while sources stay put;
    // build it once and refresh only on drift.
    let mut graph = GraphCache::build(sources, psf_radius_arcsec);
    stats.graph_builds += 1;

    // Region snapshot the workers read. Built once; between batches
    // only fitted entries are written back. The batch scope borrows
    // it immutably and joins before the coordinator touches it again,
    // so no Arc (and no per-batch clone) is needed.
    let mut snapshot: Vec<SourceParams> = sources.to_vec();

    let mut dirty: Vec<usize> = Vec::new();
    for _pass in 0..fit_cfg.bca_passes {
        stats.passes += 1;
        if graph.stale(sources, psf_radius_arcsec) {
            graph = GraphCache::build(sources, psf_radius_arcsec);
            stats.graph_builds += 1;
        }
        stats.conflict_edges = graph.graph.edges;
        let batch_size = (sources.len() / 2).max(4 * n_threads).max(1);
        let batches = sample_batches(&mut rng, &graph.graph, n_threads, batch_size);
        for batch in batches {
            stats.batches += 1;
            // Refresh the snapshot in place: only sources fitted
            // since the last refresh are copied.
            if !dirty.is_empty() {
                for &idx in &dirty {
                    snapshot[idx] = sources[idx].clone();
                }
                dirty.clear();
            }
            // One scoped spawn per non-empty component list; each
            // list's *fits* run serially in list order on whichever
            // worker owns the spawn, so no two conflicting sources
            // are ever fitted concurrently. A panicking fit
            // propagates from the scope (after the batch's other
            // lists finish) instead of hanging the coordinator.
            let lists: Vec<Vec<usize>> = batch.into_iter().filter(|l| !l.is_empty()).collect();
            let mut results: Vec<Vec<FitResult>> =
                lists.iter().map(|l| Vec::with_capacity(l.len())).collect();
            let snap = &snapshot;
            celeste_par::scope(|s| {
                for (out, list) in results.iter_mut().zip(&lists) {
                    s.spawn(move || {
                        // Software pipeline: fit source k inline on
                        // this worker while assembly of source k+1 is
                        // exposed to the pool through `join` — an
                        // idle worker steals it, overlapping problem
                        // assembly with the Newton solve. Assembly
                        // reads only the immutable batch snapshot,
                        // and when nobody steals, the worker pops the
                        // job back and the schedule degenerates to
                        // the old assemble-then-fit order; either way
                        // each source's fit consumes an identical
                        // problem and results land in list order, so
                        // output is bit-identical to the serial
                        // schedule.
                        let mut cur = assemble_source(
                            snap,
                            list[0],
                            images,
                            fixed_neighbors,
                            priors,
                            fit_cfg,
                        );
                        for pos in 0..list.len() {
                            let idx = list[pos];
                            let assembled = cur;
                            let (res, next) = celeste_par::join(
                                move || fit_assembled(idx, assembled, fit_cfg),
                                || {
                                    list.get(pos + 1).map(|&j| {
                                        assemble_source(
                                            snap,
                                            j,
                                            images,
                                            fixed_neighbors,
                                            priors,
                                            fit_cfg,
                                        )
                                    })
                                },
                            );
                            out.push(res);
                            match next {
                                Some(nx) => cur = nx,
                                None => break,
                            }
                        }
                    });
                }
            });
            for res in results.into_iter().flatten() {
                if let Some(sp) = res.source {
                    sources[res.idx] = sp;
                    dirty.push(res.idx);
                    stats.fits += 1;
                    stats.newton_iters += res.newton_iters;
                    stats.active_pixels += res.active_pixels;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::bands::Band;
    use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::render::render_observed;
    use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
    use celeste_survey::wcs::Wcs;
    use celeste_survey::Priors;

    fn scene() -> (Catalog, Vec<Image>) {
        let entries: Vec<CatalogEntry> = (0..6)
            .map(|i| CatalogEntry {
                id: i,
                pos: SkyCoord::new(0.004 + 0.004 * i as f64, 0.012),
                source_type: SourceType::Star,
                flux_r_nmgy: 10.0 + 3.0 * i as f64,
                colors: [0.4, 0.2, 0.1, 0.05],
                shape: GalaxyShape::round_disk(1.0),
            })
            .collect();
        let truth = Catalog::new(entries);
        let rect = SkyRect::new(0.0, 0.03, 0.0, 0.03);
        let images: Vec<Image> = [Band::R, Band::G]
            .iter()
            .map(|&band| {
                let mut img = Image::blank(
                    FieldId {
                        run: 1,
                        camcol: 1,
                        field: 0,
                    },
                    band,
                    Wcs::for_rect(&rect, 80, 80),
                    80,
                    80,
                    140.0,
                    300.0,
                    Psf::core_halo(1.3),
                );
                render_observed(&truth, &mut img, 31 + band.index() as u64);
                img
            })
            .collect();
        (truth, images)
    }

    #[test]
    fn parallel_region_fits_all_sources() {
        let (truth, images) = scene();
        let refs: Vec<&Image> = images.iter().collect();
        let mut sources: Vec<SourceParams> = truth
            .entries
            .iter()
            .map(|e| {
                let mut init = e.clone();
                init.flux_r_nmgy *= 0.5; // start misestimated
                SourceParams::init_from_entry(&init)
            })
            .collect();
        let priors = ModelPriors::new(Priors::sdss_default());
        let cfg = FitConfig {
            bca_passes: 2,
            ..Default::default()
        };
        let stats = process_region(&mut sources, &refs, &[], &priors, &cfg, 3, 17);
        assert_eq!(stats.passes, 2);
        assert!(stats.fits >= sources.len(), "fits {}", stats.fits);
        assert!(stats.graph_builds >= 1);
        for (sp, truth_e) in sources.iter().zip(&truth.entries) {
            let got = sp.to_entry().flux_r_nmgy;
            let want = truth_e.flux_r_nmgy;
            assert!(
                (got - want).abs() / want < 0.2,
                "source {}: flux {got} vs {want}",
                sp.id
            );
        }
    }

    #[test]
    fn parallel_matches_serial_quality() {
        let (truth, images) = scene();
        let refs: Vec<&Image> = images.iter().collect();
        let priors = ModelPriors::new(Priors::sdss_default());
        let cfg = FitConfig {
            bca_passes: 2,
            ..Default::default()
        };

        let init = |truth: &Catalog| -> Vec<SourceParams> {
            truth
                .entries
                .iter()
                .map(|e| {
                    let mut i = e.clone();
                    i.flux_r_nmgy *= 0.6;
                    SourceParams::init_from_entry(&i)
                })
                .collect()
        };
        let mut par = init(&truth);
        process_region(&mut par, &refs, &[], &priors, &cfg, 4, 5);
        let mut ser = init(&truth);
        celeste_core::optimize_sources(&mut ser, &refs, &priors, &cfg);
        // Same truth recovery within tolerance (not bitwise: different
        // update orders).
        for (a, b) in par.iter().zip(&ser) {
            let fa = a.to_entry().flux_r_nmgy;
            let fb = b.to_entry().flux_r_nmgy;
            assert!(
                (fa - fb).abs() / fb < 0.1,
                "parallel {fa} vs serial {fb} for source {}",
                a.id
            );
        }
    }

    #[test]
    fn empty_region_is_a_noop() {
        let (_, images) = scene();
        let refs: Vec<&Image> = images.iter().collect();
        let priors = ModelPriors::new(Priors::sdss_default());
        let mut none: Vec<SourceParams> = Vec::new();
        let stats = process_region(&mut none, &refs, &[], &priors, &FitConfig::default(), 4, 0);
        assert_eq!(stats.fits, 0);
    }

    #[test]
    fn single_thread_pool_is_equivalent_to_serial_batches() {
        // n_threads = 1 exercises the same pool machinery with every
        // component on one worker; results must still recover truth.
        let (truth, images) = scene();
        let refs: Vec<&Image> = images.iter().collect();
        let priors = ModelPriors::new(Priors::sdss_default());
        let mut sources: Vec<SourceParams> = truth
            .entries
            .iter()
            .map(SourceParams::init_from_entry)
            .collect();
        let cfg = FitConfig {
            bca_passes: 1,
            ..Default::default()
        };
        let stats = process_region(&mut sources, &refs, &[], &priors, &cfg, 1, 3);
        assert!(stats.fits >= sources.len());
    }
}
