//! A partitioned-global-address-space parameter store (paper §IV-C).
//!
//! "During the optimization procedure, the current parameters for all
//! celestial bodies are stored in a partitioned global address space
//! (PGAS). Our interface mimics that of the Global Arrays Toolkit. We
//! use MPI-3 as the transport layer; get and put operations on
//! elements make use of one-sided RMA operations."
//!
//! Here the address space is sharded over in-process partitions (one
//! per simulated node); `get`/`put` are one-sided in the Global Arrays
//! sense — no participation from the owner is needed. Accesses to a
//! partition other than the caller's are counted as *remote* so the
//! cluster simulator can charge interconnect latency for them.
//!
//! # Fault-tolerance invariant
//!
//! The campaign's resilience layer depends on the store never seeing
//! partial work: a node writes a region's fitted parameters back with
//! `put` only *after* its task lease commits ([`complete`] returned
//! `true`), so failed or superseded attempts leave the address space
//! untouched and a retried task re-reads exactly the parameters the
//! failed attempt read. `put` on an unknown id returns `false` rather
//! than inserting, which keeps quarantined regions at their
//! initialization values in the exported catalog.
//!
//! [`complete`]: crate::lease::TaskLedger::complete

use crate::partition::RegionTask;
use celeste_core::params::NUM_PARAMS;
use celeste_core::SourceParams;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Access statistics (for the network model and tests).
#[derive(Debug, Default)]
pub struct StoreStats {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub remote_gets: AtomicU64,
    pub remote_puts: AtomicU64,
}

/// Sharded parameter store: source id → 44-vector (+ anchor).
pub struct ParamStore {
    shards: Vec<RwLock<HashMap<u64, SourceParams>>>,
    pub stats: StoreStats,
}

impl ParamStore {
    /// Create a store partitioned across `n_partitions` simulated nodes.
    pub fn new(n_partitions: usize) -> ParamStore {
        ParamStore {
            shards: (0..n_partitions.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            stats: StoreStats::default(),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.shards.len()
    }

    /// The partition that owns a source id.
    #[inline]
    pub fn owner(&self, id: u64) -> usize {
        (id % self.shards.len() as u64) as usize
    }

    /// Insert or overwrite a source (bulk-loading at init).
    pub fn insert(&self, sp: SourceParams) {
        let shard = self.owner(sp.id);
        self.shards[shard].write().insert(sp.id, sp);
    }

    /// One-sided get from partition `from_partition`'s perspective.
    pub fn get(&self, from_partition: usize, id: u64) -> Option<SourceParams> {
        let shard = self.owner(id);
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        if shard != from_partition {
            self.stats.remote_gets.fetch_add(1, Ordering::Relaxed);
        }
        self.shards[shard].read().get(&id).cloned()
    }

    /// One-sided put of the 44-vector for an existing source.
    pub fn put(&self, from_partition: usize, id: u64, params: &[f64; NUM_PARAMS]) -> bool {
        let shard = self.owner(id);
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        if shard != from_partition {
            self.stats.remote_puts.fetch_add(1, Ordering::Relaxed);
        }
        match self.shards[shard].write().get_mut(&id) {
            Some(sp) => {
                sp.params = *params;
                true
            }
            None => false,
        }
    }

    /// Snapshot several sources at once (a task's working set).
    pub fn get_many(&self, from_partition: usize, ids: &[u64]) -> Vec<SourceParams> {
        ids.iter()
            .filter_map(|&id| self.get(from_partition, id))
            .collect()
    }

    /// All sources needed by a region task, in task order.
    pub fn load_task(
        &self,
        from_partition: usize,
        task: &RegionTask,
        id_of: &[u64],
    ) -> Vec<SourceParams> {
        let ids: Vec<u64> = task.source_indices.iter().map(|&i| id_of[i]).collect();
        self.get_many(from_partition, &ids)
    }

    /// Total sources stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain everything into a vector (end-of-campaign output step).
    pub fn export(&self) -> Vec<SourceParams> {
        let mut out: Vec<SourceParams> = self
            .shards
            .iter()
            .flat_map(|s| s.read().values().cloned().collect::<Vec<_>>())
            .collect();
        out.sort_by_key(|sp| sp.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;

    fn sp(id: u64) -> SourceParams {
        SourceParams::init_from_entry(&CatalogEntry {
            id,
            pos: SkyCoord::new(id as f64 * 0.01, 0.0),
            source_type: SourceType::Star,
            flux_r_nmgy: 1.0 + id as f64,
            colors: [0.0; 4],
            shape: GalaxyShape::round_disk(1.0),
        })
    }

    #[test]
    fn put_then_get_roundtrips() {
        let store = ParamStore::new(4);
        store.insert(sp(7));
        let mut p = [1.5; NUM_PARAMS];
        p[0] = -3.0;
        assert!(store.put(0, 7, &p));
        let got = store.get(0, 7).unwrap();
        assert_eq!(got.params, p);
        assert_eq!(got.id, 7);
    }

    #[test]
    fn put_to_missing_source_fails() {
        let store = ParamStore::new(2);
        assert!(!store.put(0, 99, &[0.0; NUM_PARAMS]));
    }

    #[test]
    fn remote_accounting() {
        let store = ParamStore::new(4);
        for id in 0..8 {
            store.insert(sp(id));
        }
        // From partition 0: ids 0,4 are local; others remote.
        for id in 0..8 {
            store.get(0, id);
        }
        assert_eq!(store.stats.gets.load(Ordering::Relaxed), 8);
        assert_eq!(store.stats.remote_gets.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn export_is_sorted_and_complete() {
        let store = ParamStore::new(3);
        for id in [5u64, 1, 9, 3] {
            store.insert(sp(id));
        }
        let all = store.export();
        let ids: Vec<u64> = all.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn concurrent_readers_and_writers_are_consistent() {
        let store = std::sync::Arc::new(ParamStore::new(8));
        for id in 0..64 {
            store.insert(sp(id));
        }
        std::thread::scope(|s| {
            for w in 0..8u64 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move || {
                    for round in 0..50u64 {
                        let id = (w * 50 + round) % 64;
                        let mut p = [w as f64; NUM_PARAMS];
                        p[1] = round as f64;
                        store.put(w as usize % 8, id, &p);
                        let got = store.get(w as usize % 8, id).unwrap();
                        // A full 44-vector is written under the shard
                        // lock, so reads never see torn values: params
                        // must be one of the written vectors.
                        let first = got.params[0];
                        assert!(got.params[2..].iter().all(|&x| x == first));
                    }
                });
            }
        });
        assert_eq!(store.len(), 64);
    }
}
