//! Distributed optimization machinery (DESIGN.md S7–S10).
//!
//! The paper's three-level parallel decomposition (§IV):
//!
//! 1. **Cluster level** — [`partition`] recursively splits the sky into
//!    region tasks of roughly equal predicted work; [`dtree`]
//!    distributes them dynamically across nodes with a tree-structured
//!    scheduler (Dtree, Pamnany et al. 2015); a second *shifted*
//!    partition stage re-optimizes boundary sources.
//! 2. **Node level** — [`cyclades`] samples the region's conflict
//!    graph and partitions connected components across worker threads
//!    so that overlapping sources are never optimized concurrently
//!    (Pan et al. 2016); [`pgas`] holds the current parameters for all
//!    sources in a sharded global address space with `get`/`put`
//!    semantics modeled on the Global Arrays Toolkit over MPI-3 RMA.
//! 3. **Source level** — `celeste-core`'s Newton trust-region fit.
//!
//! [`runtime`] wires these together into a real multi-threaded
//! region processor, and [`campaign`] runs a full survey end-to-end on
//! this machine (simulated "nodes" = thread groups), measuring the
//! same four runtime components the paper plots in Figs. 4–5: task
//! processing, image loading, load imbalance, and other.
//!
//! The resilience layer — [`lease`] (leased tasks with retry/backoff
//! and quarantine), [`checkpoint`] (durable resume state), and
//! [`fault`] (deterministic chaos injection) — keeps campaigns alive
//! through panicking fits, failed image loads, and hung tasks; see
//! the [`campaign`] module docs for the full fault-tolerance story.

pub mod campaign;
pub mod checkpoint;
pub mod cyclades;
pub mod dtree;
pub mod fault;
pub mod lease;
pub mod partition;
pub mod pgas;
pub mod runtime;

pub use campaign::{
    fit_config_hash, run_campaign, run_campaign_streaming, run_campaign_with, stage_survey,
    task_image_keys, try_run_campaign, try_stage_survey, CampaignConfig, CampaignError,
    CampaignReport, CancelToken, ComponentTimes, RegionProvenance, RegionResult, RegionSink,
    RunOptions,
};
pub use checkpoint::{plan_fingerprint, Checkpoint, CheckpointConfig, CheckpointError};
pub use cyclades::{conflict_graph, sample_batches, ConflictGraph};
pub use dtree::{Dtree, DtreeStats};
pub use fault::FaultPlan;
pub use lease::{
    Clock, FailedRegion, RegionError, RetryPolicy, SystemClock, TaskLedger, VirtualClock,
};
pub use partition::{
    partition_sky, try_partition_sky, PartitionConfig, PartitionError, RegionTask,
};
pub use pgas::{ParamStore, StoreStats};
pub use runtime::{process_region, RegionStats};
