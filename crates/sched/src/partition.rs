//! Task generation: recursive equal-work sky partitioning (paper §IV-A).
//!
//! "We partition the sky recursively into regions that we expect to
//! contain roughly the same number of bright pixels, based on existing
//! astronomical catalogs." Tasks are generated during preprocessing
//! from the initialization catalog alone (no image data), and a second
//! *shifted* partition stage picks up sources near first-stage borders.

use celeste_survey::catalog::{Catalog, CatalogEntry};
use celeste_survey::skygeom::SkyRect;

/// One node-level task: jointly optimize the sources of a sky region
/// with neighbors held fixed.
#[derive(Debug, Clone)]
pub struct RegionTask {
    pub id: u64,
    /// 0 for the base partition, 1 for the shifted partition.
    pub stage: u8,
    pub rect: SkyRect,
    /// Indices into the initialization catalog.
    pub source_indices: Vec<usize>,
    /// Predicted work (bright-pixel proxy) — what the splitter
    /// balanced on.
    pub predicted_work: f64,
}

/// Partitioning configuration.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Target predicted work per task (in bright-pixel units).
    pub target_work: f64,
    /// Hard cap on sources per task (paper: "a typical task involves
    /// jointly optimizing roughly 500 light sources").
    pub max_sources: usize,
    /// Shift (as a fraction of the mean region side) for stage 2.
    pub stage2_shift: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            target_work: 4000.0,
            max_sources: 500,
            stage2_shift: 0.5,
        }
    }
}

/// Bright-pixel proxy for one source: how many pixels it will light up
/// above threshold scales with log-flux (area of an isophote) and, for
/// galaxies, with its angular size.
pub fn predicted_work(entry: &CatalogEntry) -> f64 {
    let brightness = (1.0 + entry.flux_r_nmgy.max(0.0)).ln();
    let extent = if entry.is_star() {
        1.0
    } else {
        1.0 + entry.shape.radius_arcsec * entry.shape.radius_arcsec
    };
    10.0 * brightness * extent
}

/// Invalid partitioning input (an initialization catalog is untrusted
/// external data — it may come from a different survey's files).
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// A source's sky position is NaN or infinite.
    NonFinitePosition {
        /// The offending catalog entry's id.
        id: u64,
    },
    /// A source's predicted work is NaN or infinite (non-finite flux
    /// or galaxy shape).
    NonFiniteWork {
        /// The offending catalog entry's id.
        id: u64,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NonFinitePosition { id } => {
                write!(f, "source {id} has a non-finite sky position")
            }
            PartitionError::NonFiniteWork { id } => {
                write!(f, "source {id} has non-finite predicted work")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Generate both partition stages for `catalog` over `footprint`.
/// Panics on catalogs with non-finite positions or fluxes; the
/// validating form is [`try_partition_sky`].
pub fn partition_sky(
    catalog: &Catalog,
    footprint: &SkyRect,
    cfg: &PartitionConfig,
) -> Vec<RegionTask> {
    try_partition_sky(catalog, footprint, cfg).unwrap_or_else(|e| panic!("partition_sky: {e}"))
}

/// [`partition_sky`] with input validation: malformed catalog entries
/// come back as a typed [`PartitionError`] naming the offending
/// source, instead of a panic (or a corrupt partition) deep inside
/// the splitter. After validation the splitter itself is panic-free:
/// its comparisons use `total_cmp` and every interior `expect`
/// documents an invariant the validation establishes.
pub fn try_partition_sky(
    catalog: &Catalog,
    footprint: &SkyRect,
    cfg: &PartitionConfig,
) -> Result<Vec<RegionTask>, PartitionError> {
    for e in &catalog.entries {
        if !(e.pos.ra.is_finite() && e.pos.dec.is_finite()) {
            return Err(PartitionError::NonFinitePosition { id: e.id });
        }
        if !predicted_work(e).is_finite() {
            return Err(PartitionError::NonFiniteWork { id: e.id });
        }
    }
    Ok(partition_sky_validated(catalog, footprint, cfg))
}

/// The splitter proper; positions and works are finite by the time we
/// get here (checked by [`try_partition_sky`]).
fn partition_sky_validated(
    catalog: &Catalog,
    footprint: &SkyRect,
    cfg: &PartitionConfig,
) -> Vec<RegionTask> {
    let works: Vec<f64> = catalog.entries.iter().map(predicted_work).collect();
    let mut tasks = Vec::new();
    // Stage 1.
    let all: Vec<usize> = (0..catalog.len()).collect();
    recursive_split(catalog, &works, *footprint, all, cfg, &mut tasks, 0);
    // Stage 2: "creating a second partitioning of the sky by shifting
    // each region in the first partition by a fixed amount" (§IV-A).
    // A constant shift of a tiling is a tiling of the shifted
    // footprint; rects on the low edges are extended back to cover the
    // uncovered strip, so every source falls in exactly one region.
    if !tasks.is_empty() {
        let mean_w: f64 =
            tasks.iter().map(|t| t.rect.width_deg()).sum::<f64>() / tasks.len() as f64;
        let mean_h: f64 =
            tasks.iter().map(|t| t.rect.height_deg()).sum::<f64>() / tasks.len() as f64;
        let dx = cfg.stage2_shift * mean_w;
        let dy = cfg.stage2_shift * mean_h;
        let eps = 1e-12;
        let rects: Vec<SkyRect> = tasks
            .iter()
            .map(|t| {
                let mut r = SkyRect::new(
                    t.rect.ra_min + dx,
                    t.rect.ra_max + dx,
                    t.rect.dec_min + dy,
                    t.rect.dec_max + dy,
                );
                if t.rect.ra_min <= footprint.ra_min + eps {
                    r.ra_min = footprint.ra_min;
                }
                if t.rect.dec_min <= footprint.dec_min + eps {
                    r.dec_min = footprint.dec_min;
                }
                r
            })
            .collect();
        let mut rects = rects;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); rects.len()];
        for (i, e) in catalog.entries.iter().enumerate() {
            if let Some(r) = rects.iter().position(|r| r.contains(&e.pos)) {
                members[r].push(i);
            } else {
                // Empty stage-1 regions are never emitted, so the
                // shifted tiling can have holes; orphaned sources go to
                // the nearest stage-2 region, whose rect grows to
                // cover them.
                let nearest = rects
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da = e.pos.sep_arcsec(&a.center());
                        let db = e.pos.sep_arcsec(&b.center());
                        da.total_cmp(&db)
                    })
                    .map(|(j, _)| j)
                    // Invariant: stage 2 only runs when stage 1 emitted
                    // tasks (`!tasks.is_empty()` above), and each stage-1
                    // task contributes one shifted rect, so `rects` is
                    // nonempty here.
                    .expect("stage-2 rects nonempty");
                let r = &mut rects[nearest];
                r.ra_min = r.ra_min.min(e.pos.ra);
                r.ra_max = r.ra_max.max(e.pos.ra + 1e-9);
                r.dec_min = r.dec_min.min(e.pos.dec);
                r.dec_max = r.dec_max.max(e.pos.dec + 1e-9);
                members[nearest].push(i);
            }
        }
        for (rect, indices) in rects.into_iter().zip(members) {
            if indices.is_empty() {
                continue;
            }
            // Shifted re-binning can concentrate work past the caps;
            // split any oversize stage-2 region recursively.
            let mut stage2 = Vec::new();
            recursive_split(catalog, &works, rect, indices, cfg, &mut stage2, 0);
            for mut t in stage2 {
                t.stage = 1;
                tasks.push(t);
            }
        }
    }
    for (i, t) in tasks.iter_mut().enumerate() {
        t.id = i as u64;
    }
    tasks
}

fn recursive_split(
    catalog: &Catalog,
    works: &[f64],
    rect: SkyRect,
    indices: Vec<usize>,
    cfg: &PartitionConfig,
    out: &mut Vec<RegionTask>,
    depth: usize,
) {
    let total: f64 = indices.iter().map(|&i| works[i]).sum();
    if indices.is_empty() {
        return;
    }
    if (total <= cfg.target_work && indices.len() <= cfg.max_sources) || depth > 40 {
        out.push(RegionTask {
            id: 0,
            stage: 0,
            rect,
            source_indices: indices,
            predicted_work: total,
        });
        return;
    }
    // Split along the longer axis at the weighted median of source
    // work, so both halves get ≈ equal predicted work.
    let horizontal = rect.width_deg() >= rect.height_deg();
    let mut sorted = indices.clone();
    sorted.sort_by(|&a, &b| {
        let ka = if horizontal {
            catalog.entries[a].pos.ra
        } else {
            catalog.entries[a].pos.dec
        };
        let kb = if horizontal {
            catalog.entries[b].pos.ra
        } else {
            catalog.entries[b].pos.dec
        };
        ka.total_cmp(&kb)
    });
    let mut acc = 0.0;
    let mut cut_pos = None;
    for &i in &sorted {
        acc += works[i];
        if acc >= 0.5 * total {
            cut_pos = Some(if horizontal {
                catalog.entries[i].pos.ra
            } else {
                catalog.entries[i].pos.dec
            });
            break;
        }
    }
    let lo = if horizontal {
        rect.ra_min
    } else {
        rect.dec_min
    };
    let hi = if horizontal {
        rect.ra_max
    } else {
        rect.dec_max
    };
    let mut cut = cut_pos.unwrap_or(0.5 * (lo + hi));
    // Degenerate cuts (all sources at one edge) fall back to midpoint.
    if cut <= lo || cut >= hi {
        cut = 0.5 * (lo + hi);
    }
    let (r1, r2) = if horizontal {
        (
            SkyRect::new(rect.ra_min, cut, rect.dec_min, rect.dec_max),
            SkyRect::new(cut, rect.ra_max, rect.dec_min, rect.dec_max),
        )
    } else {
        (
            SkyRect::new(rect.ra_min, rect.ra_max, rect.dec_min, cut),
            SkyRect::new(rect.ra_min, rect.ra_max, cut, rect.dec_max),
        )
    };
    let (i1, i2): (Vec<usize>, Vec<usize>) = indices
        .into_iter()
        .partition(|&i| r1.contains(&catalog.entries[i].pos));
    // Guard: if the cut failed to separate anything, force a midpoint
    // split of indices to guarantee progress.
    if i1.is_empty() || i2.is_empty() {
        let mut both: Vec<usize> = i1.into_iter().chain(i2).collect();
        both.sort_unstable();
        let mid = both.len() / 2;
        let right = both.split_off(mid);
        recursive_split(catalog, works, r1, both, cfg, out, depth + 1);
        recursive_split(catalog, works, r2, right, cfg, out, depth + 1);
        return;
    }
    recursive_split(catalog, works, r1, i1, cfg, out, depth + 1);
    recursive_split(catalog, works, r2, i2, cfg, out, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::priors::Priors;
    use celeste_survey::skygeom::SkyCoord;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn test_catalog(n: usize) -> (Catalog, SkyRect) {
        let fp = SkyRect::new(0.0, 1.0, 0.0, 0.5);
        let priors = Priors::sdss_default();
        let mut rng = StdRng::seed_from_u64(7);
        let entries = (0..n)
            .map(|i| {
                // Cluster density toward low RA to exercise balance.
                let ra = rng.random::<f64>().powi(2);
                let dec = rng.random::<f64>() * 0.5;
                priors.sample_entry(&mut rng, i as u64, SkyCoord::new(ra, dec))
            })
            .collect();
        (Catalog::new(entries), fp)
    }

    #[test]
    fn malformed_catalogs_are_rejected_with_typed_errors() {
        let (mut cat, fp) = test_catalog(16);
        let cfg = PartitionConfig::default();
        assert!(try_partition_sky(&cat, &fp, &cfg).is_ok());

        let good_pos = cat.entries[3].pos;
        cat.entries[3].pos = SkyCoord::new(f64::NAN, 0.1);
        assert_eq!(
            try_partition_sky(&cat, &fp, &cfg).err(),
            Some(PartitionError::NonFinitePosition {
                id: cat.entries[3].id
            })
        );

        cat.entries[3].pos = good_pos;
        cat.entries[5].flux_r_nmgy = f64::INFINITY;
        assert_eq!(
            try_partition_sky(&cat, &fp, &cfg).err(),
            Some(PartitionError::NonFiniteWork {
                id: cat.entries[5].id
            })
        );
    }

    #[test]
    fn every_source_lands_in_exactly_one_stage1_region() {
        let (cat, fp) = test_catalog(2000);
        let tasks = partition_sky(&cat, &fp, &PartitionConfig::default());
        let stage1: Vec<&RegionTask> = tasks.iter().filter(|t| t.stage == 0).collect();
        let mut seen = vec![0usize; cat.len()];
        for t in &stage1 {
            for &i in &t.source_indices {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage counts wrong");
        // Rects must not overlap.
        for (a, ta) in stage1.iter().enumerate() {
            for tb in stage1.iter().skip(a + 1) {
                assert!(!ta.rect.intersects(&tb.rect), "overlapping regions");
            }
        }
    }

    #[test]
    fn work_is_roughly_balanced() {
        let (cat, fp) = test_catalog(3000);
        let cfg = PartitionConfig {
            target_work: 2000.0,
            ..Default::default()
        };
        let tasks = partition_sky(&cat, &fp, &cfg);
        let stage1: Vec<f64> = tasks
            .iter()
            .filter(|t| t.stage == 0)
            .map(|t| t.predicted_work)
            .collect();
        assert!(stage1.len() > 4);
        for w in &stage1 {
            assert!(*w <= cfg.target_work * 1.01, "task work {w} over target");
        }
        // No task should be vanishingly small relative to the mean
        // (balance within a generous factor).
        let mean: f64 = stage1.iter().sum::<f64>() / stage1.len() as f64;
        let min = stage1.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.05 * mean, "min {min} vs mean {mean}");
    }

    #[test]
    fn max_sources_cap_respected() {
        let (cat, fp) = test_catalog(4000);
        let cfg = PartitionConfig {
            target_work: 1e12,
            max_sources: 100,
            ..Default::default()
        };
        let tasks = partition_sky(&cat, &fp, &cfg);
        for t in &tasks {
            assert!(t.source_indices.len() <= 100);
        }
    }

    #[test]
    fn stage2_regions_cover_stage1_borders() {
        let (cat, fp) = test_catalog(2000);
        let tasks = partition_sky(&cat, &fp, &PartitionConfig::default());
        let stage1: Vec<&RegionTask> = tasks.iter().filter(|t| t.stage == 0).collect();
        let stage2: Vec<&RegionTask> = tasks.iter().filter(|t| t.stage == 1).collect();
        assert!(!stage2.is_empty());
        // For most stage-1 vertical borders, some stage-2 region strictly
        // contains a band around the border.
        let mut covered = 0;
        let mut total = 0;
        for t in &stage1 {
            let border_ra = t.rect.ra_max;
            if (border_ra - fp.ra_max).abs() < 1e-9 {
                continue; // outer edge
            }
            total += 1;
            let probe = SkyCoord::new(border_ra, t.rect.center().dec);
            if stage2.iter().any(|s| {
                s.rect.contains(&probe)
                    && probe.ra - s.rect.ra_min > 1e-6
                    && s.rect.ra_max - probe.ra > 1e-6
            }) {
                covered += 1;
            }
        }
        assert!(
            total == 0 || covered as f64 >= 0.5 * total as f64,
            "borders covered: {covered}/{total}"
        );
    }

    #[test]
    fn predicted_work_grows_with_flux_and_size() {
        let (cat, _) = test_catalog(50);
        let mut bright = cat.entries[0].clone();
        let mut faint = bright.clone();
        bright.flux_r_nmgy = 100.0;
        faint.flux_r_nmgy = 0.1;
        assert!(predicted_work(&bright) > predicted_work(&faint));
    }
}
