//! Durable campaign checkpoints: completed region results serialized
//! periodically so a killed campaign resumes instead of restarting.
//!
//! Format (`SCKP`, little-endian via the vendored `bytes` cursor API,
//! like the image/catalog codec in `celeste_survey::io`):
//!
//! ```text
//! magic "SCKP" | version u16 | fingerprint u64 | n_regions u32
//! per region:
//!   task_id u64 | stage u8 | node u32
//!   n_sources u32, each: id u64, base ra f64, base dec f64, 44×f64
//!   stats: 7×u64 (passes batches fits newton_iters conflict_edges
//!                 active_pixels graph_builds)
//!   provenance (v2): config_hash u64 | n_keys u32,
//!     each key: run u32 | camcol u16 | field u16 | band u8
//! ```
//!
//! The fingerprint hashes the task plan `(id, stage)*`; a checkpoint
//! only loads against the plan that produced it. Writes go to a temp
//! file in the same directory and rename into place, so a crash
//! mid-write leaves the previous checkpoint intact. Since completed
//! attempts are deterministic and never re-run on resume, parameters
//! are stored bit-exactly (`f64::to_bits`) and the resumed catalog is
//! bit-identical to an uninterrupted run.

use crate::campaign::{RegionProvenance, RegionResult};
use crate::fault::mix64;
use crate::partition::RegionTask;
use crate::runtime::RegionStats;
use bytes::{Buf, BufMut, BytesMut};
use celeste_core::{SourceParams, NUM_PARAMS};
use celeste_survey::bands::Band;
use celeste_survey::skygeom::{FieldId, SkyCoord};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"SCKP";
// v2 added per-region provenance (image keys + config hash); earlier
// files are rejected as unsupported rather than silently misread.
const VERSION: u16 = 2;

/// When and where a campaign checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Checkpoint file path (written atomically via temp + rename).
    pub path: PathBuf,
    /// Write after every `every` completed regions (and always once
    /// more when the campaign exits). 1 = after each region.
    pub every: usize,
}

impl CheckpointConfig {
    /// Checkpoint to `path` after every `every` completed regions.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            every: every.max(1),
        }
    }
}

/// Errors reading or writing a checkpoint file.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// The file is not a checkpoint, or is truncated/corrupt.
    Malformed(String),
    /// The checkpoint was produced by a different task plan.
    PlanMismatch {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the current task plan.
        expected: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::PlanMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different task plan \
                 (fingerprint {found:#018x}, campaign has {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Order-independent fingerprint of a task plan: which `(id, stage)`
/// pairs the campaign will run. Resuming against a different plan
/// (different partition, different survey) is rejected.
pub fn plan_fingerprint(tasks: &[RegionTask]) -> u64 {
    let mut acc = 0xC0FF_EE00_5EED_0001u64;
    for t in tasks {
        acc ^= mix64(t.id ^ ((t.stage as u64) << 56) ^ 0x51A6_E00D);
    }
    mix64(acc)
}

/// A decoded checkpoint: the completed region results of a prior
/// (partial or finished) run of one task plan.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// [`plan_fingerprint`] of the producing campaign's task plan.
    pub fingerprint: u64,
    /// Completed regions, in completion order.
    pub completed: Vec<RegionResult>,
}

impl Checkpoint {
    /// Serialize to the `SCKP` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(64 + self.completed.len() * 512);
        b.put_slice(MAGIC);
        b.put_u16_le(VERSION);
        b.put_u64_le(self.fingerprint);
        b.put_u32_le(self.completed.len() as u32);
        for r in &self.completed {
            b.put_u64_le(r.task_id);
            b.put_u8(r.stage);
            b.put_u32_le(r.node as u32);
            b.put_u32_le(r.sources.len() as u32);
            for sp in &r.sources {
                b.put_u64_le(sp.id);
                b.put_f64_le(sp.base_pos.ra);
                b.put_f64_le(sp.base_pos.dec);
                for &p in &sp.params {
                    b.put_f64_le(p);
                }
            }
            for v in [
                r.stats.passes,
                r.stats.batches,
                r.stats.fits,
                r.stats.newton_iters,
                r.stats.conflict_edges,
                r.stats.active_pixels,
                r.stats.graph_builds,
            ] {
                b.put_u64_le(v as u64);
            }
            b.put_u64_le(r.provenance.config_hash);
            b.put_u32_le(r.provenance.image_keys.len() as u32);
            for (field, band) in &r.provenance.image_keys {
                b.put_u32_le(field.run);
                b.put_u16_le(field.camcol);
                b.put_u16_le(field.field);
                b.put_u8(band.index() as u8);
            }
        }
        b.freeze().to_vec()
    }

    /// Decode an `SCKP` buffer.
    pub fn decode(mut buf: &[u8]) -> Result<Checkpoint, CheckpointError> {
        fn need(buf: &&[u8], n: usize, what: &str) -> Result<(), CheckpointError> {
            if buf.remaining() < n {
                Err(CheckpointError::Malformed(format!(
                    "truncated reading {what}"
                )))
            } else {
                Ok(())
            }
        }
        need(&buf, 4 + 2 + 8 + 4, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CheckpointError::Malformed("bad magic".into()));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(CheckpointError::Malformed(format!(
                "unsupported version {version}"
            )));
        }
        let fingerprint = buf.get_u64_le();
        let n_regions = buf.get_u32_le() as usize;
        // Preallocation is capped by what the buffer could possibly
        // hold (the minimum encoded region is 85 bytes), so a
        // length-lying header can cost at most `remaining / 85`
        // reserved slots — never an OOM-sized reservation.
        const MIN_REGION_BYTES: usize = 8 + 1 + 4 + 4 + 7 * 8 + 8 + 4;
        let mut completed = Vec::with_capacity(n_regions.min(buf.remaining() / MIN_REGION_BYTES));
        for _ in 0..n_regions {
            need(&buf, 8 + 1 + 4 + 4, "region header")?;
            let task_id = buf.get_u64_le();
            let stage = buf.get_u8();
            let node = buf.get_u32_le() as usize;
            let n_sources = buf.get_u32_le() as usize;
            let per_source = 8 + 16 + NUM_PARAMS * 8;
            let body = n_sources
                .checked_mul(per_source)
                .and_then(|b| b.checked_add(7 * 8))
                .ok_or_else(|| {
                    CheckpointError::Malformed("source count overflows region body".into())
                })?;
            need(&buf, body, "region body")?;
            // `need` proved the bytes exist, so this reservation is
            // bounded by the actual buffer size.
            let mut sources = Vec::with_capacity(n_sources);
            for _ in 0..n_sources {
                let id = buf.get_u64_le();
                let ra = buf.get_f64_le();
                let dec = buf.get_f64_le();
                let mut params = [0.0f64; NUM_PARAMS];
                for p in &mut params {
                    *p = buf.get_f64_le();
                }
                sources.push(SourceParams {
                    id,
                    base_pos: SkyCoord::new(ra, dec),
                    params,
                });
            }
            let mut stat = [0u64; 7];
            for s in &mut stat {
                *s = buf.get_u64_le();
            }
            need(&buf, 8 + 4, "provenance header")?;
            let config_hash = buf.get_u64_le();
            let n_keys = buf.get_u32_le() as usize;
            let keys_bytes = n_keys.checked_mul(4 + 2 + 2 + 1).ok_or_else(|| {
                CheckpointError::Malformed("key count overflows provenance body".into())
            })?;
            need(&buf, keys_bytes, "provenance keys")?;
            // Bounded by the actual buffer size, as above.
            let mut image_keys = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                let run = buf.get_u32_le();
                let camcol = buf.get_u16_le();
                let field = buf.get_u16_le();
                let band_idx = buf.get_u8() as usize;
                let band = *Band::ALL.get(band_idx).ok_or_else(|| {
                    CheckpointError::Malformed(format!("band index {band_idx} out of range"))
                })?;
                image_keys.push((FieldId { run, camcol, field }, band));
            }
            completed.push(RegionResult {
                task_id,
                stage,
                node,
                sources,
                stats: RegionStats {
                    passes: stat[0] as usize,
                    batches: stat[1] as usize,
                    fits: stat[2] as usize,
                    newton_iters: stat[3] as usize,
                    conflict_edges: stat[4] as usize,
                    active_pixels: stat[5] as usize,
                    graph_builds: stat[6] as usize,
                },
                provenance: RegionProvenance {
                    image_keys,
                    config_hash,
                },
            });
        }
        Ok(Checkpoint {
            fingerprint,
            completed,
        })
    }

    /// Atomically write to `path`: encode to `path` + `.tmp` in the
    /// same directory, then rename over the target, so a crash
    /// mid-write never corrupts an existing checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode()).map_err(CheckpointError::Io)?;
        std::fs::rename(&tmp, path).map_err(CheckpointError::Io)
    }

    /// Load from `path` and verify it belongs to the plan with
    /// `expected` fingerprint.
    pub fn load(path: &Path, expected: u64) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path).map_err(CheckpointError::Io)?;
        let ckpt = Checkpoint::decode(&bytes)?;
        if ckpt.fingerprint != expected {
            return Err(CheckpointError::PlanMismatch {
                found: ckpt.fingerprint,
                expected,
            });
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::skygeom::SkyRect;

    fn region(task_id: u64, n_sources: u64) -> RegionResult {
        RegionResult {
            task_id,
            stage: (task_id % 2) as u8,
            node: task_id as usize % 3,
            sources: (0..n_sources)
                .map(|i| {
                    let mut params = [0.0; NUM_PARAMS];
                    for (j, p) in params.iter_mut().enumerate() {
                        // Exercise sign/exponent bits incl. negatives.
                        *p = ((task_id * 131 + i * 17 + j as u64) as f64 - 300.0) * 0.37;
                    }
                    SourceParams {
                        id: task_id * 1000 + i,
                        base_pos: SkyCoord::new(0.1 * i as f64, -0.05 * i as f64),
                        params,
                    }
                })
                .collect(),
            stats: RegionStats {
                passes: 2,
                batches: 3,
                fits: 5 + task_id as usize,
                newton_iters: 40,
                conflict_edges: 7,
                active_pixels: 9000,
                graph_builds: 1,
            },
            provenance: RegionProvenance {
                image_keys: (0..task_id % 3)
                    .flat_map(|f| {
                        Band::ALL.iter().map(move |&b| {
                            (
                                FieldId {
                                    run: 1000 + task_id as u32,
                                    camcol: 1,
                                    field: f as u16,
                                },
                                b,
                            )
                        })
                    })
                    .collect(),
                config_hash: 0xABCD_0000 ^ task_id,
            },
        }
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let ckpt = Checkpoint {
            fingerprint: 0xDEAD_BEEF_1234_5678,
            completed: (0..5u64).map(|t| region(t, 1 + t % 3)).collect(),
        };
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded.fingerprint, ckpt.fingerprint);
        assert_eq!(decoded.completed.len(), ckpt.completed.len());
        for (a, b) in decoded.completed.iter().zip(&ckpt.completed) {
            assert_eq!(a.task_id, b.task_id);
            assert_eq!(a.stage, b.stage);
            assert_eq!(a.node, b.node);
            assert_eq!(a.sources.len(), b.sources.len());
            for (x, y) in a.sources.iter().zip(&b.sources) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.base_pos.ra.to_bits(), y.base_pos.ra.to_bits());
                assert_eq!(x.base_pos.dec.to_bits(), y.base_pos.dec.to_bits());
                for (p, q) in x.params.iter().zip(&y.params) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }
            }
            assert_eq!(a.stats.fits, b.stats.fits);
            assert_eq!(a.stats.active_pixels, b.stats.active_pixels);
            assert_eq!(a.provenance, b.provenance);
        }
    }

    #[test]
    fn save_load_and_plan_guard() {
        let tasks: Vec<RegionTask> = (0..4u64)
            .map(|id| RegionTask {
                id,
                stage: (id % 2) as u8,
                rect: SkyRect::new(0.0, 1.0, 0.0, 1.0),
                source_indices: vec![],
                predicted_work: 1.0,
            })
            .collect();
        let fp = plan_fingerprint(&tasks);
        // Order-independent, content-sensitive.
        let mut rev = tasks.clone();
        rev.reverse();
        assert_eq!(fp, plan_fingerprint(&rev));
        assert_ne!(fp, plan_fingerprint(&tasks[..3]));

        let dir = std::env::temp_dir().join(format!("celeste-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.sckp");
        let ckpt = Checkpoint {
            fingerprint: fp,
            completed: vec![region(1, 2)],
        };
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path, fp).unwrap();
        assert_eq!(loaded.completed.len(), 1);
        assert_eq!(loaded.completed[0].task_id, 1);
        match Checkpoint::load(&path, fp ^ 1) {
            Err(CheckpointError::PlanMismatch { found, expected }) => {
                assert_eq!(found, fp);
                assert_eq!(expected, fp ^ 1);
            }
            other => panic!("want PlanMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_buffers_are_typed_errors() {
        assert!(matches!(
            Checkpoint::decode(b"nope"),
            Err(CheckpointError::Malformed(_))
        ));
        let good = Checkpoint {
            fingerprint: 7,
            completed: vec![region(0, 2)],
        }
        .encode();
        assert!(matches!(
            Checkpoint::decode(&good[..good.len() - 3]),
            Err(CheckpointError::Malformed(_))
        ));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Checkpoint::decode(&bad_magic),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
