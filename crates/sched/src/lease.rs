//! Leased tasks with retry/backoff, expiry reclaim, and quarantine.
//!
//! At 650k cores (the paper's headline run), a hung node or a
//! panicking fit cannot be allowed to stall or abort the campaign.
//! This module turns [`Dtree`] pops into *leases*: a node acquires a
//! task with a deadline; a completion is accepted only while its
//! lease is current (exactly-once arbitration); failed or expired
//! leases are reissued with bounded retries and seeded-deterministic
//! exponential backoff; and tasks that exhaust their retry budget are
//! *quarantined* — reported in the campaign's `failed_regions`
//! instead of aborting the run.
//!
//! All timing flows through an injectable [`Clock`], so the chaos
//! suite runs on a [`VirtualClock`] where "hanging past a deadline"
//! is instantaneous and deterministic.

use crate::dtree::Dtree;
use crate::fault::mix64;
use celeste_survey::io::ImageKey;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

/// The campaign's time source. Lease deadlines, retry backoff, and
/// injected stalls all go through this trait so tests can substitute
/// a [`VirtualClock`] and make fault timing deterministic; production
/// uses [`SystemClock`]. Profiling timers (the report's component
/// times) intentionally stay on `std::time::Instant`.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic time since this clock's epoch.
    fn now(&self) -> Duration;
    /// Block (or virtually advance) for `d`.
    fn sleep(&self, d: Duration);
}

/// Wall-clock [`Clock`] anchored at construction.
#[derive(Debug)]
pub struct SystemClock(std::time::Instant);

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock(std::time::Instant::now())
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.0.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic [`Clock`] for tests: `sleep` advances virtual time
/// instantly instead of blocking, so backoff waits and past-deadline
/// hangs cost nothing and reproduce exactly.
#[derive(Debug, Default)]
pub struct VirtualClock(std::sync::atomic::AtomicU64);

impl VirtualClock {
    /// Advance virtual time by `d` without a sleeper.
    pub fn advance(&self, d: Duration) {
        self.0
            .fetch_add(d.as_nanos() as u64, std::sync::atomic::Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.0.load(std::sync::atomic::Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// Retry and lease policy for one campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per task (first try included) before quarantine.
    pub max_attempts: u32,
    /// How long a lease holder has to complete before the task is
    /// reclaimed and reissued.
    pub lease_timeout: Duration,
    /// Backoff before retry `n` is `base * 2^(n-2)` (50ms, 100ms, …),
    /// jittered up to +50% and capped at `backoff_cap`.
    pub backoff_base: Duration,
    /// Upper bound on the (pre-jitter) backoff delay.
    pub backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter: the delay before a
    /// given `(task, attempt)` is identical on every run.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            lease_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0xCE1E_57E5,
        }
    }
}

impl RetryPolicy {
    /// The deterministic, jittered delay before attempt `attempt`
    /// (2-based: the first retry) of `task_id` becomes eligible.
    pub fn backoff(&self, task_id: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(2).min(20);
        let base = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap);
        let h = mix64(self.jitter_seed ^ mix64(task_id) ^ attempt as u64);
        let jitter = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0,1)
        base.mul_f64(1.0 + 0.5 * jitter)
    }
}

/// Why one attempt at a region task failed. Carried per attempt in
/// [`FailedRegion::errors`] (the error chain of a quarantined task)
/// and cloneable, so underlying store errors are captured as text the
/// way [`celeste_survey::io::IoError::Prefetch`] carries them across
/// worker boundaries.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionError {
    /// A blocking image fetch failed.
    ImageLoad {
        /// The (field, band) that failed to load.
        key: ImageKey,
        /// The store error, stringified.
        error: String,
    },
    /// The region fit panicked; the payload is stringified.
    FitPanic(String),
    /// The lease expired before its holder completed (hung or slow
    /// task reclaimed by the supervisor).
    LeaseExpired {
        /// Which attempt timed out.
        attempt: u32,
    },
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::ImageLoad { key, error } => {
                write!(f, "loading image {:?}/{} failed: {error}", key.0, key.1)
            }
            RegionError::FitPanic(m) => write!(f, "region fit panicked: {m}"),
            RegionError::LeaseExpired { attempt } => {
                write!(f, "lease expired on attempt {attempt}")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// A region task that exhausted its retry budget and was quarantined:
/// the campaign completed without it (its sources keep their
/// initialization parameters) and reports it here instead of
/// aborting.
#[derive(Debug, Clone)]
pub struct FailedRegion {
    /// The `RegionTask::id` of the quarantined task.
    pub task_id: u64,
    /// Partition stage (0 = primary, 1 = shifted boundary pass).
    pub stage: u8,
    /// Attempts consumed (== the policy's `max_attempts`).
    pub attempts: u32,
    /// One error per failed attempt, oldest first.
    pub errors: Vec<RegionError>,
}

/// An acquired lease on one task: proof of the right to process it.
/// Completion is accepted only while the lease is current.
#[derive(Debug, Clone, Copy)]
pub struct Lease {
    /// Index into the stage's task slice.
    pub task_index: usize,
    /// Which attempt this lease represents (1-based).
    pub attempt: u32,
    /// Ledger-unique lease id (the arbitration token).
    id: u64,
}

/// What [`TaskLedger::acquire`] hands back.
#[derive(Debug)]
pub enum Acquire {
    /// A task lease; process it and call `complete` or `fail`.
    Task(Lease),
    /// Nothing is currently eligible (work is leased elsewhere or
    /// backing off); sleep about this long and ask again.
    Wait(Duration),
    /// Every task is settled (done or quarantined): stop.
    Drained,
}

#[derive(Debug, Clone)]
enum State {
    /// Still in the Dtree, never attempted.
    Fresh,
    /// Failed or reclaimed; eligible again at its heap `ready_at`.
    Waiting {
        attempt: u32,
    },
    /// Held by a node until `deadline`.
    Leased {
        id: u64,
        attempt: u32,
        deadline: Duration,
    },
    Done,
    Quarantined,
}

/// Counters the campaign report surfaces.
#[derive(Debug, Clone, Copy, Default)]
pub struct LedgerStats {
    /// Task reissues (after failure or expiry).
    pub retries: u64,
    /// Leases reclaimed past their deadline.
    pub leases_expired: u64,
    /// Completions rejected because the lease had been reissued
    /// (exactly-once arbitration in action).
    pub stale_completions: u64,
}

struct Inner {
    states: Vec<State>,
    /// Failed/reclaimed tasks keyed by eligibility time (min-heap).
    retries: BinaryHeap<Reverse<(Duration, usize)>>,
    /// Per-task error chain (accumulated across attempts).
    errors: Vec<Vec<RegionError>>,
    /// Tasks not yet Done or Quarantined.
    unsettled: usize,
    next_lease_id: u64,
    stats: LedgerStats,
    failed: Vec<FailedRegion>,
}

/// The lease supervisor for one partition stage: wraps the stage's
/// [`Dtree`] (fresh tasks keep the paper's tree-structured
/// distribution) and arbitrates leases, retries, expiry, and
/// quarantine for everything after the first attempt. Cheap: one
/// mutex at *region* granularity — nothing here runs per fit or per
/// pixel.
pub struct TaskLedger {
    dtree: Dtree<usize>,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    /// `(task_id, stage)` per task index, for error records.
    meta: Vec<(u64, u8)>,
    inner: Mutex<Inner>,
}

/// Idle nodes poll at most this often, so a `Wait` never oversleeps a
/// completion or newly eligible retry by much (and a virtual clock
/// advances in bounded steps).
const MAX_WAIT_TICK: Duration = Duration::from_millis(5);

impl TaskLedger {
    /// Build a ledger over `meta.len()` tasks, distributing the
    /// indices *not* in `pre_done` (a resumed checkpoint's completed
    /// set) across `n_nodes` Dtree leaves.
    pub fn new(
        meta: Vec<(u64, u8)>,
        pre_done: &[usize],
        n_nodes: usize,
        dtree_fanout: usize,
        policy: RetryPolicy,
        clock: Arc<dyn Clock>,
    ) -> TaskLedger {
        let n = meta.len();
        let mut states = vec![State::Fresh; n];
        for &i in pre_done {
            states[i] = State::Done;
        }
        let fresh: Vec<usize> = (0..n)
            .filter(|i| matches!(states[*i], State::Fresh))
            .collect();
        let unsettled = fresh.len();
        TaskLedger {
            dtree: Dtree::new(n_nodes, dtree_fanout, fresh),
            policy,
            clock,
            meta,
            inner: Mutex::new(Inner {
                states,
                retries: BinaryHeap::new(),
                errors: vec![Vec::new(); n],
                unsettled,
                next_lease_id: 1,
                stats: LedgerStats::default(),
                failed: Vec::new(),
            }),
        }
    }

    /// The policy this ledger enforces.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn lease_locked(&self, inner: &mut Inner, task_index: usize, attempt: u32) -> Lease {
        let id = inner.next_lease_id;
        inner.next_lease_id += 1;
        inner.states[task_index] = State::Leased {
            id,
            attempt,
            deadline: self.clock.now() + self.policy.lease_timeout,
        };
        Lease {
            task_index,
            attempt,
            id,
        }
    }

    /// Move a failed/expired task to the retry heap, or quarantine it
    /// when its budget is exhausted.
    fn reissue_or_quarantine_locked(
        &self,
        inner: &mut Inner,
        task_index: usize,
        attempt: u32,
        error: RegionError,
    ) {
        inner.errors[task_index].push(error);
        if attempt >= self.policy.max_attempts {
            inner.states[task_index] = State::Quarantined;
            inner.unsettled -= 1;
            let (task_id, stage) = self.meta[task_index];
            inner.failed.push(FailedRegion {
                task_id,
                stage,
                attempts: attempt,
                errors: inner.errors[task_index].clone(),
            });
        } else {
            let next = attempt + 1;
            let ready_at = self.clock.now() + self.policy.backoff(self.meta[task_index].0, next);
            inner.states[task_index] = State::Waiting { attempt: next };
            inner.retries.push(Reverse((ready_at, task_index)));
            inner.stats.retries += 1;
        }
    }

    /// Reclaim every lease whose deadline has passed (the supervisor
    /// sweep — any idle node performs it on the way into `acquire`).
    fn reap_locked(&self, inner: &mut Inner, now: Duration) {
        for i in 0..inner.states.len() {
            if let State::Leased {
                attempt, deadline, ..
            } = inner.states[i]
            {
                if deadline < now {
                    inner.stats.leases_expired += 1;
                    self.reissue_or_quarantine_locked(
                        inner,
                        i,
                        attempt,
                        RegionError::LeaseExpired { attempt },
                    );
                }
            }
        }
    }

    /// Lease the next *fresh* (never attempted) task for `node`
    /// without waiting — the lookahead path that lets a node start
    /// prefetching its next task's images while computing the current
    /// one. Retries and expiry go through [`TaskLedger::acquire`].
    pub fn try_acquire_fresh(&self, node: usize) -> Option<Lease> {
        let task_index = self.dtree.pop(node)?;
        let mut inner = self.inner.lock();
        Some(self.lease_locked(&mut inner, task_index, 1))
    }

    /// Acquire work for `node`: a fresh Dtree task if any, else the
    /// earliest eligible retry, else directions to wait or stop.
    /// Expired leases are reclaimed on every call.
    pub fn acquire(&self, node: usize) -> Acquire {
        if let Some(task_index) = self.dtree.pop(node) {
            let mut inner = self.inner.lock();
            return Acquire::Task(self.lease_locked(&mut inner, task_index, 1));
        }
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        self.reap_locked(&mut inner, now);
        if let Some(&Reverse((ready_at, task_index))) = inner.retries.peek() {
            if ready_at <= now {
                inner.retries.pop();
                // A task can only be in the heap in Waiting state;
                // recover its attempt number from there.
                let attempt = match inner.states[task_index] {
                    State::Waiting { attempt } => attempt,
                    ref s => unreachable!("retry heap holds non-waiting task in state {s:?}"),
                };
                return Acquire::Task(self.lease_locked(&mut inner, task_index, attempt));
            }
        }
        if inner.unsettled == 0 {
            return Acquire::Drained;
        }
        // Wait until the nearest future event: a retry becoming
        // eligible or an outstanding lease expiring.
        let mut next_event = inner
            .retries
            .peek()
            .map(|&Reverse((ready_at, _))| ready_at)
            .unwrap_or(Duration::MAX);
        for s in &inner.states {
            if let State::Leased { deadline, .. } = s {
                next_event = next_event.min(*deadline);
            }
        }
        let wait = next_event
            .saturating_sub(now)
            .clamp(Duration::from_micros(200), MAX_WAIT_TICK);
        Acquire::Wait(wait)
    }

    /// Commit a completed lease. Returns `true` iff the lease is
    /// still current *and* inside its deadline — exactly one
    /// completion is ever accepted per task; late results (from
    /// reclaimed leases, or arriving after the deadline before any
    /// reaper noticed) return `false` and must be discarded by the
    /// caller. The deadline check makes expiry independent of
    /// whether another node happened to reap the lease first, so
    /// `lease_timeout` must comfortably exceed the worst-case
    /// region fit time.
    pub fn complete(&self, lease: &Lease) -> bool {
        let mut inner = self.inner.lock();
        match inner.states[lease.task_index] {
            State::Leased { id, deadline, .. } if id == lease.id => {
                if deadline < self.clock.now() {
                    inner.stats.leases_expired += 1;
                    inner.stats.stale_completions += 1;
                    self.reissue_or_quarantine_locked(
                        &mut inner,
                        lease.task_index,
                        lease.attempt,
                        RegionError::LeaseExpired {
                            attempt: lease.attempt,
                        },
                    );
                    return false;
                }
                inner.states[lease.task_index] = State::Done;
                inner.unsettled -= 1;
                true
            }
            _ => {
                inner.stats.stale_completions += 1;
                false
            }
        }
    }

    /// Report a failed attempt. The task is reissued after backoff,
    /// or quarantined once its budget is spent. Failures on stale
    /// leases (already reclaimed and reissued) are ignored.
    pub fn fail(&self, lease: &Lease, error: RegionError) {
        let mut inner = self.inner.lock();
        match inner.states[lease.task_index] {
            State::Leased { id, .. } if id == lease.id => {
                self.reissue_or_quarantine_locked(
                    &mut inner,
                    lease.task_index,
                    lease.attempt,
                    error,
                );
            }
            _ => {}
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LedgerStats {
        self.inner.lock().stats
    }

    /// Quarantined tasks with their per-attempt error chains.
    pub fn failed_regions(&self) -> Vec<FailedRegion> {
        self.inner.lock().failed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(n: usize, policy: RetryPolicy, clock: Arc<dyn Clock>) -> TaskLedger {
        let meta: Vec<(u64, u8)> = (0..n as u64).map(|i| (i, 0)).collect();
        TaskLedger::new(meta, &[], 1, 4, policy, clock)
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy::default();
        for task in 0..20u64 {
            for attempt in 2..6u32 {
                let a = p.backoff(task, attempt);
                let b = p.backoff(task, attempt);
                assert_eq!(a, b, "jitter must be a pure function");
                let base = p
                    .backoff_base
                    .saturating_mul(1 << (attempt - 2))
                    .min(p.backoff_cap);
                assert!(
                    a >= base && a <= base.mul_f64(1.5),
                    "{a:?} vs base {base:?}"
                );
            }
        }
        // Jitter decorrelates tasks: not all delays equal.
        let d: Vec<Duration> = (0..10).map(|t| p.backoff(t, 2)).collect();
        assert!(d.iter().any(|&x| x != d[0]));
        // Growth caps out.
        assert!(p.backoff(1, 30) <= p.backoff_cap.mul_f64(1.5));
    }

    #[test]
    fn happy_path_serves_each_task_once() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::default());
        let lg = ledger(8, RetryPolicy::default(), clock);
        let mut done = Vec::new();
        loop {
            match lg.acquire(0) {
                Acquire::Task(lease) => {
                    assert_eq!(lease.attempt, 1);
                    assert!(lg.complete(&lease));
                    done.push(lease.task_index);
                }
                Acquire::Wait(d) => panic!("unexpected wait {d:?}"),
                Acquire::Drained => break,
            }
        }
        done.sort_unstable();
        assert_eq!(done, (0..8).collect::<Vec<_>>());
        assert_eq!(lg.stats().retries, 0);
    }

    #[test]
    fn failed_attempts_back_off_then_quarantine_with_error_chain() {
        let clock = Arc::new(VirtualClock::default());
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            ..Default::default()
        };
        let lg = ledger(1, policy, Arc::clone(&clock) as Arc<dyn Clock>);
        for attempt in 1..=3u32 {
            let lease = loop {
                match lg.acquire(0) {
                    Acquire::Task(l) => break l,
                    Acquire::Wait(d) => clock.sleep(d),
                    Acquire::Drained => panic!("drained early"),
                }
            };
            assert_eq!(lease.attempt, attempt);
            lg.fail(&lease, RegionError::FitPanic(format!("boom {attempt}")));
        }
        assert!(matches!(lg.acquire(0), Acquire::Drained));
        let failed = lg.failed_regions();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].attempts, 3);
        assert_eq!(failed[0].errors.len(), 3);
        assert_eq!(failed[0].errors[2], RegionError::FitPanic("boom 3".into()));
        assert_eq!(lg.stats().retries, 2);
    }

    #[test]
    fn expired_lease_is_reclaimed_and_late_completion_rejected() {
        let clock = Arc::new(VirtualClock::default());
        let policy = RetryPolicy {
            lease_timeout: Duration::from_millis(50),
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let lg = ledger(1, policy, Arc::clone(&clock) as Arc<dyn Clock>);
        let Acquire::Task(first) = lg.acquire(0) else {
            panic!("no task")
        };
        // The holder "hangs": time passes its deadline.
        clock.advance(Duration::from_millis(200));
        // The supervisor sweep reissues it (after backoff).
        let second = loop {
            match lg.acquire(0) {
                Acquire::Task(l) => break l,
                Acquire::Wait(d) => clock.sleep(d),
                Acquire::Drained => panic!("drained early"),
            }
        };
        assert_eq!(second.attempt, 2);
        assert_eq!(lg.stats().leases_expired, 1);
        // The hung holder finally reports in: too late.
        assert!(!lg.complete(&first));
        assert_eq!(lg.stats().stale_completions, 1);
        // The reissued lease wins.
        assert!(lg.complete(&second));
        assert!(matches!(lg.acquire(0), Acquire::Drained));
    }

    #[test]
    fn pre_done_tasks_are_never_served() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::default());
        let meta: Vec<(u64, u8)> = (0..6u64).map(|i| (i, 0)).collect();
        let lg = TaskLedger::new(meta, &[1, 4], 2, 4, RetryPolicy::default(), clock);
        let mut served = Vec::new();
        for node in [0usize, 1] {
            loop {
                match lg.acquire(node) {
                    Acquire::Task(l) => {
                        assert!(lg.complete(&l));
                        served.push(l.task_index);
                    }
                    Acquire::Wait(_) => break,
                    Acquire::Drained => break,
                }
            }
        }
        served.sort_unstable();
        assert_eq!(served, vec![0, 2, 3, 5]);
        assert!(matches!(lg.acquire(0), Acquire::Drained));
    }
}
