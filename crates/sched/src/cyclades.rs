//! Cyclades: conflict-free asynchronous block coordinate ascent
//! (paper §IV-D, after Pan et al. 2016).
//!
//! Block coordinate ascent is serial if updated blocks overlap.
//! Cyclades builds a *conflict graph* — vertices are light sources,
//! edges join sources whose appearances overlap — samples vertices
//! without replacement, splits the sampled subgraph into connected
//! components, and assigns whole components to threads. Overlapping
//! sources therefore always land on the same thread, and every update
//! remains a correct serial BCA step.

use celeste_core::SourceParams;
use rand::seq::SliceRandom;
use rand::Rng;

/// The region's conflict graph (adjacency lists by source index).
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    pub adj: Vec<Vec<usize>>,
    pub edges: usize,
}

/// Effective overlap radius of a source in arcsec: PSF-ish core plus
/// galaxy extent.
pub(crate) fn overlap_radius_arcsec(sp: &SourceParams, psf_radius_arcsec: f64) -> f64 {
    let shape = sp.shape();
    let gal = if sp.star_prob() < 0.95 {
        2.0 * shape.radius_arcsec
    } else {
        0.0
    };
    psf_radius_arcsec + gal
}

/// Build the conflict graph: an edge wherever two sources' supports
/// overlap (separation below the sum of their radii).
pub fn conflict_graph(sources: &[SourceParams], psf_radius_arcsec: f64) -> ConflictGraph {
    let n = sources.len();
    let radii: Vec<f64> = sources
        .iter()
        .map(|s| overlap_radius_arcsec(s, psf_radius_arcsec))
        .collect();
    let mut adj = vec![Vec::new(); n];
    let mut edges = 0;
    // n is at most ~500 per task; the quadratic sweep is fine and
    // avoids an index structure.
    for i in 0..n {
        for j in (i + 1)..n {
            let sep = sources[i].base_pos.sep_arcsec(&sources[j].base_pos);
            if sep < radii[i] + radii[j] {
                adj[i].push(j);
                adj[j].push(i);
                edges += 1;
            }
        }
    }
    ConflictGraph { adj, edges }
}

/// One Cyclades batch: per-thread lists of source indices; components
/// are never split across threads.
pub type Batch = Vec<Vec<usize>>;

/// Sample Cyclades batches covering every source exactly once.
///
/// Each batch draws `batch_size` sources at random without
/// replacement, finds connected components of the conflict graph
/// *restricted to the sample*, and packs components onto `n_threads`
/// threads largest-first (LPT). "Even if the conflict graph is
/// connected, its restriction to a random sample typically has many
/// connected components" (§IV-D).
pub fn sample_batches<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &ConflictGraph,
    n_threads: usize,
    batch_size: usize,
) -> Vec<Batch> {
    let n = graph.adj.len();
    let n_threads = n_threads.max(1);
    let batch_size = batch_size.clamp(1, n.max(1));
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut batches = Vec::new();
    for chunk in order.chunks(batch_size) {
        // Union-find over the sampled vertices only.
        let mut comp_of: std::collections::HashMap<usize, usize> =
            chunk.iter().map(|&v| (v, v)).collect();
        fn find(map: &mut std::collections::HashMap<usize, usize>, v: usize) -> usize {
            let mut root = v;
            while map[&root] != root {
                root = map[&root];
            }
            // Path compression.
            let mut cur = v;
            while map[&cur] != root {
                let next = map[&cur];
                map.insert(cur, root);
                cur = next;
            }
            root
        }
        for &v in chunk {
            for &w in &graph.adj[v] {
                if comp_of.contains_key(&w) {
                    let rv = find(&mut comp_of, v);
                    let rw = find(&mut comp_of, w);
                    if rv != rw {
                        comp_of.insert(rv, rw);
                    }
                }
            }
        }
        // Collect components.
        let mut comps: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for &v in chunk {
            let r = find(&mut comp_of, v);
            comps.entry(r).or_default().push(v);
        }
        let mut comps: Vec<Vec<usize>> = comps.into_values().collect();
        // LPT packing: biggest components first onto the least-loaded
        // thread.
        comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut threads: Batch = vec![Vec::new(); n_threads];
        let mut loads = vec![0usize; n_threads];
        for comp in comps {
            let t = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap_or(0);
            loads[t] += comp.len();
            threads[t].extend(comp);
        }
        batches.push(threads);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn source_at(id: u64, ra_arcsec: f64) -> SourceParams {
        SourceParams::init_from_entry(&CatalogEntry {
            id,
            pos: SkyCoord::new(ra_arcsec / 3600.0, 0.0),
            source_type: SourceType::Star,
            flux_r_nmgy: 5.0,
            colors: [0.0; 4],
            shape: GalaxyShape::round_disk(1.0),
        })
    }

    fn chain(n: usize, sep_arcsec: f64) -> Vec<SourceParams> {
        (0..n)
            .map(|i| source_at(i as u64, i as f64 * sep_arcsec))
            .collect()
    }

    #[test]
    fn close_pairs_conflict_far_pairs_do_not() {
        let sources = chain(3, 100.0); // far apart
        let g = conflict_graph(&sources, 5.0);
        assert_eq!(g.edges, 0);
        let sources = chain(3, 4.0); // overlapping chain
        let g = conflict_graph(&sources, 5.0);
        assert!(g.edges >= 2);
        assert!(g.adj[1].contains(&0) && g.adj[1].contains(&2));
    }

    #[test]
    fn batches_cover_every_source_exactly_once() {
        let sources = chain(100, 8.0);
        let g = conflict_graph(&sources, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let batches = sample_batches(&mut rng, &g, 4, 25);
        let mut seen = vec![0usize; 100];
        for b in &batches {
            for t in b {
                for &v in t {
                    seen[v] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn conflicting_sources_share_a_thread() {
        // Dense cluster: everything within one component.
        let mut sources = chain(30, 3.0);
        sources.extend((0..30).map(|i| source_at(100 + i as u64, 10_000.0 + i as f64 * 500.0)));
        let g = conflict_graph(&sources, 5.0);
        let mut rng = StdRng::seed_from_u64(11);
        let batches = sample_batches(&mut rng, &g, 4, 20);
        for batch in &batches {
            // Thread of each sampled vertex.
            let mut thread_of = std::collections::HashMap::new();
            for (t, list) in batch.iter().enumerate() {
                for &v in list {
                    thread_of.insert(v, t);
                }
            }
            for (&v, &tv) in &thread_of {
                for &w in &g.adj[v] {
                    if let Some(&tw) = thread_of.get(&w) {
                        assert_eq!(tv, tw, "conflicting {v},{w} split across threads");
                    }
                }
            }
        }
    }

    #[test]
    fn isolated_sources_spread_across_threads() {
        let sources = chain(64, 1000.0); // no conflicts
        let g = conflict_graph(&sources, 5.0);
        let mut rng = StdRng::seed_from_u64(5);
        let batches = sample_batches(&mut rng, &g, 8, 64);
        assert_eq!(batches.len(), 1);
        let loads: Vec<usize> = batches[0].iter().map(|t| t.len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 64);
        assert!(loads.iter().all(|&l| l == 8), "unbalanced: {loads:?}");
    }

    #[test]
    fn empty_input_yields_no_batches() {
        let g = conflict_graph(&[], 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_batches(&mut rng, &g, 4, 10).is_empty());
    }
}
