//! Typed SCQP client: one TCP connection, blocking request/response.
//!
//! Used by the parity tests, the `celeste_served` example, and — per
//! ROADMAP item 2 — the future multi-node transport. Error frames
//! come back as [`ServeError::Remote`] carrying the full source
//! chain: a remote query-validation failure surfaces the same
//! [`StoreError::InvalidQuery`] an in-process call would return.
//!
//! [`StoreError::InvalidQuery`]: celeste_store::StoreError

use crate::wire::{decode_payload, encode_request, Body, Request, Response};
use crate::{RemoteError, ServeError};
use celeste_store::{CatalogQuery, CatalogStoreStats, SourceFilter};
use celeste_survey::catalog::CatalogEntry;
use celeste_survey::skygeom::{SkyCoord, SkyRect};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default per-call timeout.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);
/// Default ceiling on response payload size (a whole catalog can
/// come back from a brightest-N over millions of sources, so this is
/// deliberately roomy — it guards against a garbage length prefix,
/// not against big answers).
const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// A connected SCQP client.
pub struct CatalogClient {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl CatalogClient {
    /// Connect with default timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<CatalogClient, ServeError> {
        CatalogClient::connect_with(addr, DEFAULT_TIMEOUT, DEFAULT_MAX_FRAME)
    }

    /// Connect with an explicit per-call timeout and response-size
    /// ceiling.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        max_frame: usize,
    ) -> Result<CatalogClient, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ServeError::Io)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(ServeError::Io)?;
        stream.set_nodelay(true).ok();
        Ok(CatalogClient {
            stream,
            next_id: 1,
            max_frame,
        })
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), ServeError> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(ServeError::Protocol(
                        "server closed the connection mid-frame".into(),
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
        Ok(())
    }

    /// One request/response exchange, with id echo verification.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream
            .write_all(&encode_request(id, request))
            .map_err(ServeError::Io)?;
        let mut len_bytes = [0u8; 4];
        self.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > self.max_frame {
            return Err(ServeError::Wire(crate::wire::WireError::FrameTooLarge {
                len,
                max: self.max_frame,
            }));
        }
        let mut payload = vec![0u8; len];
        self.read_exact(&mut payload)?;
        let frame = decode_payload(&payload).map_err(ServeError::Wire)?;
        match frame.body {
            Body::Response(resp) => {
                // Error frames may legitimately carry id 0 (the
                // server cannot know the id of a frame it could not
                // decode); anything else must echo ours.
                let id_ok = frame.request_id == id
                    || (frame.request_id == 0 && matches!(resp, Response::Error(_)));
                if !id_ok {
                    return Err(ServeError::Protocol(format!(
                        "response id {} does not echo request id {id}",
                        frame.request_id
                    )));
                }
                Ok(resp)
            }
            Body::Request(_) => Err(ServeError::Protocol(
                "server sent a request frame to a client".into(),
            )),
        }
    }

    /// Run a self-describing query; entries come back exactly as the
    /// in-process [`celeste_store::CatalogStore::query`] would return
    /// them (bit-identical floats).
    pub fn query(&mut self, q: &CatalogQuery) -> Result<Vec<CatalogEntry>, ServeError> {
        match self.call(&Request::Query(q.clone()))? {
            Response::Entries(entries) => Ok(entries),
            Response::Error(frame) => Err(ServeError::Remote(RemoteError::new(frame))),
            other => unexpected("entries", &other),
        }
    }

    /// Cone search with per-hit separations, nearest first.
    pub fn cone_search(
        &mut self,
        center: &SkyCoord,
        radius_arcsec: f64,
    ) -> Result<Vec<(CatalogEntry, f64)>, ServeError> {
        let req = Request::Cone {
            center: *center,
            radius_arcsec,
        };
        match self.call(&req)? {
            Response::Cone(hits) => Ok(hits),
            Response::Error(frame) => Err(ServeError::Remote(RemoteError::new(frame))),
            other => unexpected("cone hits", &other),
        }
    }

    /// Rect search, ascending id.
    pub fn rect_search(
        &mut self,
        rect: &SkyRect,
        filter: &SourceFilter,
    ) -> Result<Vec<CatalogEntry>, ServeError> {
        self.query(&CatalogQuery::Rect {
            rect: *rect,
            filter: *filter,
        })
    }

    /// The `n` brightest sources, brightest first.
    pub fn brightest_n(
        &mut self,
        n: usize,
        within: Option<&SkyRect>,
    ) -> Result<Vec<CatalogEntry>, ServeError> {
        self.query(&CatalogQuery::BrightestN {
            n,
            within: within.copied(),
        })
    }

    /// Fetch the server's store counters.
    pub fn stats(&mut self) -> Result<CatalogStoreStats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(frame) => Err(ServeError::Remote(RemoteError::new(frame))),
            other => unexpected("stats", &other),
        }
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(frame) => Err(ServeError::Remote(RemoteError::new(frame))),
            other => unexpected("pong", &other),
        }
    }
}

fn unexpected<T>(wanted: &str, got: &Response) -> Result<T, ServeError> {
    let kind = match got {
        Response::Entries(_) => "entries",
        Response::Cone(_) => "cone hits",
        Response::Stats(_) => "stats",
        Response::Pong => "pong",
        Response::Error(_) => "error",
    };
    Err(ServeError::Protocol(format!(
        "expected {wanted} response, got {kind}"
    )))
}
