//! The daemon's network face: a blocking-IO accept loop feeding a
//! bounded pool of dedicated connection-handler OS threads.
//!
//! Dedicated threads (not the compute pool) for the same reason PR
//! 8 moved campaign node loops off it: a slow or stalled client must
//! never wedge a fitting pipeline. The listener runs nonblocking and
//! polls the [`CancelToken`] between accepts; handlers poll it
//! between reads (sockets carry a short poll timeout under the
//! configured per-connection deadline), so shutdown never waits on a
//! silent peer.
//!
//! Error discipline per connection: a well-framed but unanswerable
//! request (query validation) gets an [`ErrorKind::InvalidQuery`]
//! frame and the connection stays open; an undecodable or oversized
//! frame gets its typed error frame and then the connection closes —
//! after garbage, the framing can no longer be trusted.

use crate::evict::ServedStore;
use crate::wire::{
    decode_payload, encode_response, Body, ErrorFrame, ErrorKind, Request, Response, WireError,
};
use crate::{ServeConfig, ServeError};
use celeste_sched::CancelToken;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often blocked accepts/reads re-check the cancel token.
const POLL: Duration = Duration::from_millis(20);

/// A running catalog server; dropping it shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    cancel: CancelToken,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Token that stops the accept loop and all handlers.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Stop accepting, unblock every handler, and join all threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.cancel.cancel();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds and runs the SCQP server for a [`ServedStore`].
pub struct CatalogServer;

impl CatalogServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `store` with `config.max_connections` handler threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<ServedStore>,
        config: &ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(addr).map_err(ServeError::Io)?;
        listener.set_nonblocking(true).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let cancel = CancelToken::default();
        let (conn_tx, conn_rx) = crossbeam::channel::unbounded::<TcpStream>();

        let workers = (0..config.max_connections.max(1))
            .map(|i| {
                let rx = conn_rx.clone();
                let store = store.clone();
                let cancel = cancel.clone();
                let cfg = config.clone();
                std::thread::Builder::new()
                    .name(format!("celeste-serve-{i}"))
                    .spawn(move || {
                        // Ends when the accept thread drops the last
                        // sender (shutdown) and the queue drains.
                        for sock in rx.iter() {
                            if cancel.is_cancelled() {
                                break;
                            }
                            serve_connection(sock, &store, &cfg, &cancel);
                        }
                    })
                    .expect("spawn connection handler")
            })
            .collect();

        let accept_cancel = cancel.clone();
        let accept = std::thread::Builder::new()
            .name("celeste-serve-accept".into())
            .spawn(move || {
                // `conn_tx` moves in here: when this loop exits, the
                // channel closes and idle workers drain out.
                while !accept_cancel.is_cancelled() {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            if conn_tx.send(sock).is_err() {
                                break;
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::Interrupted =>
                        {
                            std::thread::sleep(POLL);
                        }
                        // Transient accept failures (EMFILE, resets):
                        // back off and keep listening.
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })
            .expect("spawn accept loop");

        Ok(ServerHandle {
            addr,
            cancel,
            accept: Some(accept),
            workers,
        })
    }
}

/// How a framed read ended.
enum ReadStatus {
    /// Buffer filled.
    Done,
    /// Peer closed cleanly before the first byte.
    Eof,
    /// Cancelled, timed out, or closed mid-frame: drop the
    /// connection without a response.
    Bail,
}

/// Fill `buf` from `sock`, polling `cancel` between short socket
/// timeouts so shutdown is never blocked on a silent peer, and
/// enforcing `timeout` overall. Partial reads accumulate — a slow
/// peer trickling bytes inside the deadline still frames correctly.
fn read_full(
    sock: &mut TcpStream,
    buf: &mut [u8],
    timeout: Duration,
    cancel: &CancelToken,
) -> ReadStatus {
    let deadline = Instant::now() + timeout;
    let mut filled = 0usize;
    while filled < buf.len() {
        if cancel.is_cancelled() || Instant::now() >= deadline {
            return ReadStatus::Bail;
        }
        match sock.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadStatus::Eof
                } else {
                    ReadStatus::Bail
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadStatus::Bail,
        }
    }
    ReadStatus::Done
}

fn send(sock: &mut TcpStream, request_id: u64, resp: &Response) -> bool {
    sock.write_all(&encode_response(request_id, resp)).is_ok()
}

fn error_response(kind: ErrorKind, message: String) -> Response {
    Response::Error(ErrorFrame { kind, message })
}

/// Serve one client until it disconnects, errors, or the server
/// shuts down.
fn serve_connection(
    mut sock: TcpStream,
    store: &ServedStore,
    cfg: &ServeConfig,
    cancel: &CancelToken,
) {
    // Blocking socket with a short receive timeout: `read_full`'s
    // cancel/deadline polling depends on reads waking up regularly.
    if sock.set_nonblocking(false).is_err()
        || sock.set_read_timeout(Some(POLL)).is_err()
        || sock.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    sock.set_nodelay(true).ok();
    loop {
        let mut len_bytes = [0u8; 4];
        match read_full(&mut sock, &mut len_bytes, cfg.read_timeout, cancel) {
            ReadStatus::Done => {}
            ReadStatus::Eof | ReadStatus::Bail => return,
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > cfg.max_frame_bytes {
            // Typed refusal, then drop: we will not read `len` bytes,
            // so the stream position is unrecoverable.
            send(
                &mut sock,
                0,
                &error_response(
                    ErrorKind::FrameTooLarge,
                    WireError::FrameTooLarge {
                        len,
                        max: cfg.max_frame_bytes,
                    }
                    .to_string(),
                ),
            );
            return;
        }
        let mut payload = vec![0u8; len];
        match read_full(&mut sock, &mut payload, cfg.read_timeout, cancel) {
            ReadStatus::Done => {}
            ReadStatus::Eof | ReadStatus::Bail => return,
        }
        let frame = match decode_payload(&payload) {
            Ok(f) => f,
            Err(e) => {
                // Malformed frame: answer with the typed error, then
                // close — framing may be desynced.
                send(
                    &mut sock,
                    0,
                    &error_response(ErrorKind::Malformed, e.to_string()),
                );
                return;
            }
        };
        let request = match frame.body {
            Body::Request(r) => r,
            Body::Response(_) => {
                send(
                    &mut sock,
                    frame.request_id,
                    &error_response(
                        ErrorKind::Malformed,
                        "peer sent a response frame to the server".into(),
                    ),
                );
                return;
            }
        };
        let response = respond(store, &request);
        if !send(&mut sock, frame.request_id, &response) {
            return;
        }
    }
}

/// Answer one well-framed request. Query-validation failures keep
/// the connection; they are the client's typed error, not a protocol
/// breach.
fn respond(store: &ServedStore, request: &Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(store.stats()),
        Request::Query(q) => match store.query(q) {
            Ok(entries) => Response::Entries(entries),
            Err(e) => serve_error_response(e),
        },
        Request::Cone {
            center,
            radius_arcsec,
        } => match store.cone_search(center, *radius_arcsec) {
            Ok(hits) => Response::Cone(hits),
            Err(e) => serve_error_response(e),
        },
    }
}

fn serve_error_response(e: ServeError) -> Response {
    match e {
        ServeError::Query(q) => error_response(ErrorKind::InvalidQuery, q.to_string()),
        other => error_response(ErrorKind::Internal, other.to_string()),
    }
}
