//! The daemon's memory policy: a [`CatalogStore`] wrapped with
//! snapshot-backed, cell-granular LRU eviction.
//!
//! With `max_resident_entries == 0` every query goes straight to the
//! store (fully concurrent, no extra locking). With a capacity set, a
//! query runs in three steps under one policy mutex:
//!
//! 1. **Fault-in** — the cells the query can reach (via
//!    [`CatalogStore::covering_cells`], which shares the cone's
//!    bounding-rect math with the search itself) are intersected with
//!    the spilled set and loaded back from the snapshot file with
//!    [`Snapshot::load_cells`]; entries re-enter through
//!    [`CatalogStore::insert_if_absent`] so a fresher fit ingested
//!    since the spill is never clobbered.
//! 2. **Query** — the store answers exactly as it would in-process;
//!    the query's touch stamp marks its cells hottest.
//! 3. **Evict** — if residency exceeds capacity, the coldest cells
//!    (oldest last-touch first) are removed with
//!    [`CatalogStore::take_cell`] and the snapshot is rewritten to
//!    cover resident ∪ taken ∪ previously-spilled before anything is
//!    forgotten, so an entry is never only in memory *or* lost.
//!
//! Serializing capacity-bounded queries through one mutex is a
//! deliberate trade-off: it makes the fault-in/evict/query
//! interleaving trivially sound (no window where another connection's
//! eviction removes cells a query just faulted in). The unbounded
//! configuration — the common case while a catalog fits in memory —
//! keeps the store's full lock-striped concurrency.

use crate::snapshot::Snapshot;
use crate::ServeError;
use celeste_store::{CatalogQuery, CatalogStore, CatalogStoreStats, StoreConfig};
use celeste_survey::catalog::{Catalog, CatalogEntry};
use celeste_survey::skygeom::{CellId, SkyCoord};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Eviction bookkeeping, all behind one mutex.
#[derive(Debug, Default)]
struct PolicyState {
    /// Cells whose entries live (only) in the snapshot file.
    spilled: BTreeSet<CellId>,
    /// The store version the snapshot file is known to cover, if any.
    /// `None` means dirty: the file must be rewritten before it can
    /// back an eviction.
    snapshot_version: Option<u64>,
}

/// A [`CatalogStore`] plus the daemon's persistence and memory
/// policy. All daemon reads and writes go through this type; a live
/// campaign may keep ingesting into [`ServedStore::store`]
/// concurrently.
pub struct ServedStore {
    store: CatalogStore,
    snapshot_path: Option<PathBuf>,
    capacity: usize,
    // lock-order: policy mutex is strictly outer to every store lock
    // (stripes, shards, cache); the store never calls back into it.
    state: Mutex<PolicyState>,
}

impl ServedStore {
    /// Build the store a daemon serves. If `snapshot_path` names an
    /// existing `SCST` file, its catalog is loaded (fingerprint
    /// verified) so the daemon answers instantly with zero refits. A
    /// nonzero `capacity` (max resident entries) requires a snapshot
    /// path — evicted cells must have somewhere to go.
    pub fn open(
        config: StoreConfig,
        snapshot_path: Option<PathBuf>,
        capacity: usize,
    ) -> Result<ServedStore, ServeError> {
        if capacity > 0 && snapshot_path.is_none() {
            return Err(ServeError::Config(
                "max_resident_entries requires a snapshot path to spill to".into(),
            ));
        }
        let store = CatalogStore::new(config);
        let mut snapshot_version = None;
        if let Some(path) = &snapshot_path {
            if path.exists() {
                let snap = Snapshot::load(path)?;
                let level_matches = snap.level == store.level();
                for (_, entries) in snap.cells {
                    for e in entries {
                        store.insert(e);
                    }
                }
                // A snapshot grouped at a different level can't back
                // cell-granular fault-in; leave it dirty so the first
                // eviction rewrites it at our level.
                if level_matches {
                    snapshot_version = Some(store.version());
                }
            }
        }
        let served = ServedStore {
            store,
            snapshot_path,
            capacity,
            state: Mutex::new(PolicyState {
                spilled: BTreeSet::new(),
                snapshot_version,
            }),
        };
        if served.capacity > 0 {
            // lock-order: serve policy state (outer to store locks)
            let mut state = served.state.lock();
            served.enforce_capacity(&mut state)?;
        }
        Ok(served)
    }

    /// The underlying store — the ingest surface for
    /// `run_campaign_into_store` and friends.
    pub fn store(&self) -> &CatalogStore {
        &self.store
    }

    /// Max resident entries (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many cells currently live only in the snapshot file.
    pub fn spilled_cells(&self) -> usize {
        // lock-order: serve policy state (outer to store locks)
        self.state.lock().spilled.len()
    }

    /// Occupancy/traffic counters of the resident store (spilled
    /// cells are not resident and therefore not counted).
    pub fn stats(&self) -> CatalogStoreStats {
        self.store.stats()
    }

    /// Run a self-describing query with fault-in and eviction.
    pub fn query(&self, q: &CatalogQuery) -> Result<Vec<CatalogEntry>, ServeError> {
        self.run(q, |s| s.query(q))
    }

    /// Cone search (with separations) with fault-in and eviction.
    pub fn cone_search(
        &self,
        center: &SkyCoord,
        radius_arcsec: f64,
    ) -> Result<Vec<(CatalogEntry, f64)>, ServeError> {
        let coverage = CatalogQuery::Cone {
            center: *center,
            radius_arcsec,
        };
        self.run(&coverage, |s| s.cone_search(center, radius_arcsec))
    }

    /// The full catalog — resident entries plus everything spilled to
    /// the snapshot file, resident winning by id, ascending id order.
    pub fn catalog(&self) -> Result<Catalog, ServeError> {
        if self.capacity == 0 {
            return Ok(self.store.to_catalog());
        }
        // lock-order: serve policy state (outer to store locks)
        let state = self.state.lock();
        let mut by_id: BTreeMap<u64, CatalogEntry> = BTreeMap::new();
        if !state.spilled.is_empty() {
            let path = self.snapshot_path.as_ref().expect("capacity>0 has a path");
            for e in Snapshot::load_cells(path, &state.spilled)? {
                by_id.insert(e.id, e);
            }
        }
        for e in self.store.to_catalog().entries {
            by_id.insert(e.id, e);
        }
        Ok(Catalog::new(by_id.into_values().collect()))
    }

    /// Write a full snapshot now (resident ∪ spilled), atomically.
    /// No-op error if the store was opened without a snapshot path.
    pub fn snapshot(&self) -> Result<(), ServeError> {
        if self.snapshot_path.is_none() {
            return Err(ServeError::Config(
                "store was opened without a snapshot path".into(),
            ));
        }
        // lock-order: serve policy state (outer to store locks)
        let mut state = self.state.lock();
        self.rewrite_snapshot(&mut state)
    }

    fn run<T>(
        &self,
        coverage: &CatalogQuery,
        f: impl FnOnce(&CatalogStore) -> Result<T, celeste_store::StoreError>,
    ) -> Result<T, ServeError> {
        if self.capacity == 0 {
            // Unbounded: nothing is ever spilled, skip the policy
            // mutex entirely and keep the store's concurrency.
            return f(&self.store).map_err(ServeError::Query);
        }
        // lock-order: serve policy state (outer to store locks)
        let mut state = self.state.lock();
        let covering = self
            .store
            .covering_cells(coverage)
            .map_err(ServeError::Query)?;
        let wanted: BTreeSet<CellId> = match covering {
            None => state.spilled.clone(),
            Some(cells) => cells
                .into_iter()
                .filter(|c| state.spilled.contains(c))
                .collect(),
        };
        if !wanted.is_empty() {
            self.fault_in(&mut state, &wanted)?;
        }
        let out = f(&self.store).map_err(ServeError::Query)?;
        self.enforce_capacity(&mut state)?;
        Ok(out)
    }

    /// Reload `wanted` spilled cells from the snapshot file.
    fn fault_in(
        &self,
        state: &mut PolicyState,
        wanted: &BTreeSet<CellId>,
    ) -> Result<(), ServeError> {
        let path = self.snapshot_path.as_ref().expect("capacity>0 has a path");
        let v0 = self.store.version();
        let mut inserted = 0u64;
        for e in Snapshot::load_cells(path, wanted)? {
            if self.store.insert_if_absent(e) {
                inserted += 1;
            }
        }
        for c in wanted {
            state.spilled.remove(c);
        }
        // The faulted entries came *from* the file, so the file still
        // covers them: advance the covered version by exactly our own
        // bumps. Any concurrent external insert breaks the equality
        // and conservatively leaves the snapshot dirty.
        if state.snapshot_version == Some(v0) && self.store.version() == v0 + inserted {
            state.snapshot_version = Some(v0 + inserted);
        } else {
            state.snapshot_version = None;
        }
        Ok(())
    }

    /// Rewrite the snapshot to cover resident ∪ spilled (resident
    /// wins by id), plus `extra` entries taken out of the store but
    /// not yet in the file (they win over the old file, lose to
    /// resident re-inserts).
    fn rewrite_with(
        &self,
        state: &mut PolicyState,
        extra: &BTreeMap<u64, CatalogEntry>,
    ) -> Result<(), ServeError> {
        let path = self.snapshot_path.as_ref().expect("checked by caller");
        let v0 = self.store.version();
        let mut by_id: BTreeMap<u64, CatalogEntry> = BTreeMap::new();
        if !state.spilled.is_empty() && path.exists() {
            for e in Snapshot::load_cells(path, &state.spilled)? {
                by_id.insert(e.id, e);
            }
        }
        for (id, e) in extra {
            by_id.insert(*id, e.clone());
        }
        for e in self.store.to_catalog().entries {
            by_id.insert(e.id, e);
        }
        let snap = Snapshot::of_entries(by_id.into_values().collect(), self.store.level());
        snap.save(path)?;
        // Mutations racing the collection above bump the version past
        // v0 and the file is (correctly) considered dirty again.
        state.snapshot_version = Some(v0);
        Ok(())
    }

    fn rewrite_snapshot(&self, state: &mut PolicyState) -> Result<(), ServeError> {
        self.rewrite_with(state, &BTreeMap::new())
    }

    /// Evict coldest cells until residency fits the capacity. The
    /// snapshot is rewritten *with the taken entries in hand*, so a
    /// concurrent insert into a victim cell (between stats and take)
    /// can never be lost: whatever `take_cell` returned is written
    /// out before the policy lock is released.
    fn enforce_capacity(&self, state: &mut PolicyState) -> Result<(), ServeError> {
        if self.capacity == 0 {
            return Ok(());
        }
        let stats = self.store.stats();
        if stats.entries <= self.capacity {
            return Ok(());
        }
        let mut order = stats.per_cell;
        // Coldest first: oldest last-touch, then fewest touches, then
        // cell id for determinism.
        order.sort_by_key(|o| (o.last_touch, o.touches, o.cell));
        let mut resident = stats.entries;
        let mut taken: BTreeMap<u64, CatalogEntry> = BTreeMap::new();
        for occ in &order {
            if resident <= self.capacity {
                break;
            }
            let evicted = self.store.take_cell(occ.cell);
            if evicted.is_empty() {
                continue;
            }
            resident -= evicted.len().min(resident);
            state.spilled.insert(occ.cell);
            for e in evicted {
                taken.insert(e.id, e);
            }
        }
        if taken.is_empty() {
            return Ok(());
        }
        self.rewrite_with(state, &taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::catalog::{GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyRect;

    fn entry(id: u64) -> CatalogEntry {
        CatalogEntry {
            id,
            pos: SkyCoord::new(
                (id as f64 * 47.0) % 360.0,
                ((id as f64 * 13.0) % 160.0) - 80.0,
            ),
            source_type: if id.is_multiple_of(2) {
                SourceType::Star
            } else {
                SourceType::Galaxy
            },
            flux_r_nmgy: 1.0 + id as f64,
            colors: [0.0, 0.1, 0.2, 0.3],
            shape: GalaxyShape::round_disk(1.0),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("celeste-evict-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cat.scst")
    }

    #[test]
    fn capacity_requires_snapshot_path() {
        assert!(matches!(
            ServedStore::open(StoreConfig::default(), None, 10),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn unbounded_store_is_transparent() {
        let served = ServedStore::open(StoreConfig::default(), None, 0).unwrap();
        for id in 0..20 {
            served.store().insert(entry(id));
        }
        assert_eq!(served.catalog().unwrap().len(), 20);
        assert_eq!(served.spilled_cells(), 0);
        let all = served
            .query(&CatalogQuery::BrightestN {
                n: 100,
                within: None,
            })
            .unwrap();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn eviction_spills_and_queries_fault_back_in() {
        let path = tmp("spill");
        let served = ServedStore::open(StoreConfig::default(), Some(path.clone()), 8).unwrap();
        for id in 0..64 {
            served.store().insert(entry(id));
        }
        // Queries answer identically to a brute-force reference over
        // the same entries, no matter what is resident.
        let reference: Vec<CatalogEntry> = (0..64).map(entry).collect();
        for probe in 0..16u64 {
            let rect = SkyRect::new(
                (probe as f64 * 23.0) % 340.0,
                (probe as f64 * 23.0) % 340.0 + 20.0,
                -80.0,
                80.0,
            );
            let got = served
                .query(&CatalogQuery::Rect {
                    rect,
                    filter: Default::default(),
                })
                .unwrap();
            let mut want: Vec<CatalogEntry> = reference
                .iter()
                .filter(|e| rect.contains(&e.pos))
                .cloned()
                .collect();
            want.sort_by_key(|e| e.id);
            assert_eq!(got, want, "probe {probe}");
            assert!(
                served.stats().entries <= 8 || served.spilled_cells() == 0,
                "capacity enforced after each query"
            );
        }
        assert!(served.spilled_cells() > 0, "64 entries can't fit in 8");
        // Nothing was lost: the union is the full catalog.
        let cat = served.catalog().unwrap();
        assert_eq!(cat.len(), 64);
        for (got, want) in cat.entries.iter().zip(&reference) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.flux_r_nmgy.to_bits(), want.flux_r_nmgy.to_bits());
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn restart_from_snapshot_serves_identically() {
        let path = tmp("restart");
        {
            let served = ServedStore::open(StoreConfig::default(), Some(path.clone()), 0).unwrap();
            for id in 0..30 {
                served.store().insert(entry(id));
            }
            served.snapshot().unwrap();
        }
        let reborn = ServedStore::open(StoreConfig::default(), Some(path.clone()), 0).unwrap();
        assert_eq!(reborn.catalog().unwrap().len(), 30);
        assert_eq!(
            reborn.stats().regions_ingested,
            0,
            "restart must not refit anything"
        );
        let got = reborn
            .query(&CatalogQuery::BrightestN { n: 5, within: None })
            .unwrap();
        let ids: Vec<u64> = got.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![29, 28, 27, 26, 25]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn fault_in_never_clobbers_fresher_fits() {
        let path = tmp("fresher");
        let served = ServedStore::open(StoreConfig::default(), Some(path.clone()), 4).unwrap();
        for id in 0..32 {
            served.store().insert(entry(id));
        }
        // Force everything through an eviction cycle.
        served
            .query(&CatalogQuery::BrightestN { n: 1, within: None })
            .unwrap();
        assert!(served.spilled_cells() > 0);
        // A live campaign now re-fits source 3 with a new flux.
        let mut fresher = entry(3);
        fresher.flux_r_nmgy = 999.0;
        served.store().insert(fresher);
        // A whole-sky query faults every spilled cell back in; the
        // stale snapshot copy of 3 must not overwrite the new fit.
        let all = served
            .query(&CatalogQuery::BrightestN {
                n: 64,
                within: None,
            })
            .unwrap();
        assert_eq!(all[0].id, 3);
        assert_eq!(all[0].flux_r_nmgy, 999.0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
