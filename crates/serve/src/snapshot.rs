//! `SCST` v1 — cell-grouped catalog snapshots.
//!
//! A daemon periodically freezes its [`CatalogStore`] to one file so
//! a restart serves the full catalog instantly, with zero refits, and
//! so cold cells can be evicted from memory and faulted back in on
//! demand. Format (little-endian, `bytes` cursor API like `SCKP`):
//!
//! ```text
//! magic "SCST" | version u16 | fingerprint u64 | level u8 | n_cells u32
//! per cell: level u8 | ix u32 | iy u32 | n_entries u32 | n × entry
//! ```
//!
//! Entries use the fixed-width 97-byte SCQP encoding
//! ([`wire::ENTRY_BYTES`]), which is what makes partial loads cheap:
//! [`Snapshot::load_cells`] skips an unwanted cell in O(1) by
//! advancing `n_entries × 97` bytes instead of decoding it. The
//! fingerprint is [`catalog_content_hash`] over all entries in
//! ascending-id order — a full [`Snapshot::load`] recomputes and
//! verifies it, so bit rot surfaces as a typed
//! [`SnapshotError::FingerprintMismatch`], never a silently wrong
//! catalog. Writes go to `path + ".tmp"` and rename into place
//! (crash mid-write leaves the previous snapshot intact). Parameters
//! are stored bit-exactly (`f64` bits pass through unchanged), so a
//! restarted daemon answers queries bit-identically to the one that
//! wrote the file.

use crate::wire::{self, ENTRY_BYTES};
use bytes::{Buf, BufMut, BytesMut};
use celeste_store::{catalog_content_hash, CatalogStore};
use celeste_survey::catalog::{Catalog, CatalogEntry};
use celeste_survey::skygeom::CellId;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Snapshot file magic.
pub const MAGIC: &[u8; 4] = b"SCST";
/// Snapshot format version.
pub const VERSION: u16 = 1;

/// Errors reading or writing a snapshot file.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// The file is not a snapshot, or is truncated/corrupt.
    Malformed(String),
    /// The decoded entries hash differently than the header claims —
    /// the file was corrupted after it was written.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        found: u64,
        /// Fingerprint of the decoded content.
        expected: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            SnapshotError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot content does not match its fingerprint \
                 (header {found:#018x}, content {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A decoded (or about-to-be-encoded) catalog snapshot: entries
/// grouped by the sky cell they live in at `level`.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Cell refinement level the grouping used.
    pub level: u8,
    /// [`catalog_content_hash`] over all entries, ascending id.
    pub fingerprint: u64,
    /// Cells in ascending [`CellId`] order; entries within a cell in
    /// ascending id order.
    pub cells: Vec<(CellId, Vec<CatalogEntry>)>,
}

impl Snapshot {
    /// Freeze the current contents of `store`: every entry, grouped
    /// by its cell at the store's level, fingerprinted.
    pub fn of_store(store: &CatalogStore) -> Snapshot {
        Snapshot::of_entries(store.to_catalog().entries, store.level())
    }

    /// Group `entries` into cells at `level`, deduplicating by id
    /// (last write wins) and ordering ascending — the same
    /// normalization [`CatalogStore::to_catalog`] applies, so the
    /// fingerprint is deterministic regardless of input order.
    pub fn of_entries(entries: Vec<CatalogEntry>, level: u8) -> Snapshot {
        let mut by_id: BTreeMap<u64, CatalogEntry> = BTreeMap::new();
        for e in entries {
            by_id.insert(e.id, e);
        }
        let catalog = Catalog::new(by_id.into_values().collect());
        let fingerprint = catalog_content_hash(&catalog);
        let mut cells: BTreeMap<CellId, Vec<CatalogEntry>> = BTreeMap::new();
        for e in catalog.entries {
            cells.entry(CellId::of(&e.pos, level)).or_default().push(e);
        }
        Snapshot {
            level,
            fingerprint,
            cells: cells.into_iter().collect(),
        }
    }

    /// Every entry across all cells, ascending id.
    pub fn entries(&self) -> Vec<CatalogEntry> {
        let mut by_id: BTreeMap<u64, CatalogEntry> = BTreeMap::new();
        for (_, cell) in &self.cells {
            for e in cell {
                by_id.insert(e.id, e.clone());
            }
        }
        by_id.into_values().collect()
    }

    /// Serialize to the `SCST` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let n_entries: usize = self.cells.iter().map(|(_, c)| c.len()).sum();
        let mut b = BytesMut::with_capacity(32 + self.cells.len() * 16 + n_entries * ENTRY_BYTES);
        b.put_slice(MAGIC);
        b.put_u16_le(VERSION);
        b.put_u64_le(self.fingerprint);
        b.put_u8(self.level);
        b.put_u32_le(self.cells.len() as u32);
        for (cell, entries) in &self.cells {
            b.put_u8(cell.level);
            b.put_u32_le(cell.ix);
            b.put_u32_le(cell.iy);
            b.put_u32_le(entries.len() as u32);
            for e in entries {
                wire::put_entry_bytes(&mut b, e);
            }
        }
        b.freeze().to_vec()
    }

    /// Decode an `SCST` buffer and verify its fingerprint.
    pub fn decode(buf: &[u8]) -> Result<Snapshot, SnapshotError> {
        let snap = Snapshot::decode_unverified(buf)?;
        let expected = catalog_content_hash(&Catalog::new(snap.entries()));
        if snap.fingerprint != expected {
            return Err(SnapshotError::FingerprintMismatch {
                found: snap.fingerprint,
                expected,
            });
        }
        Ok(snap)
    }

    fn decode_unverified(mut buf: &[u8]) -> Result<Snapshot, SnapshotError> {
        fn need(buf: &&[u8], n: usize, what: &str) -> Result<(), SnapshotError> {
            if buf.remaining() < n {
                Err(SnapshotError::Malformed(format!(
                    "truncated reading {what}"
                )))
            } else {
                Ok(())
            }
        }
        need(&buf, 4 + 2 + 8 + 1 + 4, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(SnapshotError::Malformed("bad magic".into()));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(SnapshotError::Malformed(format!(
                "unsupported version {version}"
            )));
        }
        let fingerprint = buf.get_u64_le();
        let level = buf.get_u8();
        let n_cells = buf.get_u32_le() as usize;
        // Bounded reservation: a length-lying header can reserve at
        // most `remaining / 13` slots (the minimum encoded cell).
        const MIN_CELL_BYTES: usize = 1 + 4 + 4 + 4;
        let mut cells = Vec::with_capacity(n_cells.min(buf.remaining() / MIN_CELL_BYTES));
        for _ in 0..n_cells {
            need(&buf, MIN_CELL_BYTES, "cell header")?;
            let cell = CellId {
                level: buf.get_u8(),
                ix: buf.get_u32_le(),
                iy: buf.get_u32_le(),
            };
            let n_entries = buf.get_u32_le() as usize;
            let body = n_entries.checked_mul(ENTRY_BYTES).ok_or_else(|| {
                SnapshotError::Malformed("entry count overflows cell body".into())
            })?;
            need(&buf, body, "cell entries")?;
            // `need` proved the bytes exist; bounded reservation.
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                entries.push(
                    wire::get_entry_bytes(&mut buf)
                        .map_err(|e| SnapshotError::Malformed(e.to_string()))?,
                );
            }
            cells.push((cell, entries));
        }
        if !buf.is_empty() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes",
                buf.len()
            )));
        }
        Ok(Snapshot {
            level,
            fingerprint,
            cells,
        })
    }

    /// Atomically write to `path` (temp file + rename, like `SCKP`).
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode()).map_err(SnapshotError::Io)?;
        std::fs::rename(&tmp, path).map_err(SnapshotError::Io)
    }

    /// Load and fingerprint-verify a full snapshot from `path`.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        Snapshot::decode(&bytes)
    }

    /// Load only the entries of `wanted` cells from `path`, skipping
    /// every other cell without decoding it (`n_entries × 97`-byte
    /// strides). This is the eviction fault-in path: cheap even when
    /// the snapshot is much larger than memory. Structural errors are
    /// typed; the whole-file fingerprint is *not* recomputed here
    /// (that would defeat the point of a partial read).
    pub fn load_cells(
        path: &Path,
        wanted: &BTreeSet<CellId>,
    ) -> Result<Vec<CatalogEntry>, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        let mut buf: &[u8] = &bytes;
        fn need(buf: &&[u8], n: usize, what: &str) -> Result<(), SnapshotError> {
            if buf.remaining() < n {
                Err(SnapshotError::Malformed(format!(
                    "truncated reading {what}"
                )))
            } else {
                Ok(())
            }
        }
        need(&buf, 4 + 2 + 8 + 1 + 4, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(SnapshotError::Malformed("bad magic".into()));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(SnapshotError::Malformed(format!(
                "unsupported version {version}"
            )));
        }
        let _fingerprint = buf.get_u64_le();
        let _level = buf.get_u8();
        let n_cells = buf.get_u32_le() as usize;
        let mut out = Vec::new();
        for _ in 0..n_cells {
            need(&buf, 1 + 4 + 4 + 4, "cell header")?;
            let cell = CellId {
                level: buf.get_u8(),
                ix: buf.get_u32_le(),
                iy: buf.get_u32_le(),
            };
            let n_entries = buf.get_u32_le() as usize;
            let body = n_entries.checked_mul(ENTRY_BYTES).ok_or_else(|| {
                SnapshotError::Malformed("entry count overflows cell body".into())
            })?;
            need(&buf, body, "cell entries")?;
            if wanted.contains(&cell) {
                out.reserve(n_entries);
                for _ in 0..n_entries {
                    out.push(
                        wire::get_entry_bytes(&mut buf)
                            .map_err(|e| SnapshotError::Malformed(e.to_string()))?,
                    );
                }
            } else {
                // O(1) skip: `need` above proved `body` bytes exist.
                buf = &buf[body..];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::catalog::{GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;

    fn entry(id: u64) -> CatalogEntry {
        CatalogEntry {
            id,
            pos: SkyCoord::new(
                (id as f64 * 61.3) % 360.0,
                ((id as f64 * 17.9) % 160.0) - 80.0,
            ),
            source_type: if id.is_multiple_of(3) {
                SourceType::Galaxy
            } else {
                SourceType::Star
            },
            flux_r_nmgy: 0.25 * id as f64,
            colors: [0.1, 0.2, -0.3, 0.4],
            shape: GalaxyShape::round_disk(1.0 + id as f64 * 0.01),
        }
    }

    #[test]
    fn roundtrips_bit_exactly_and_guards_fingerprint() {
        let snap = Snapshot::of_entries((0..50).map(entry).collect(), 10);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
        for (a, b) in decoded.entries().iter().zip(snap.entries()) {
            assert_eq!(a.pos.ra.to_bits(), b.pos.ra.to_bits());
            assert_eq!(a.flux_r_nmgy.to_bits(), b.flux_r_nmgy.to_bits());
        }
        // Flip one flux bit deep in a cell body: structure still
        // parses, fingerprint catches it.
        let mut corrupt = bytes.clone();
        let off = bytes.len() - 40;
        corrupt[off] ^= 1;
        assert!(matches!(
            Snapshot::decode(&corrupt),
            Err(SnapshotError::FingerprintMismatch { .. }) | Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn partial_load_skips_unwanted_cells() {
        let dir = std::env::temp_dir().join(format!("celeste-scst-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.scst");
        let snap = Snapshot::of_entries((0..80).map(entry).collect(), 10);
        assert!(snap.cells.len() > 2, "fixture must span several cells");
        snap.save(&path).unwrap();

        let wanted: BTreeSet<CellId> = snap.cells.iter().take(2).map(|(c, _)| *c).collect();
        let got = Snapshot::load_cells(&path, &wanted).unwrap();
        let want: Vec<CatalogEntry> = snap
            .cells
            .iter()
            .take(2)
            .flat_map(|(_, es)| es.clone())
            .collect();
        assert_eq!(got, want);

        let all = Snapshot::load(&path).unwrap();
        assert_eq!(all, snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_buffers_are_typed_errors() {
        assert!(matches!(
            Snapshot::decode(b"nope"),
            Err(SnapshotError::Malformed(_))
        ));
        let good = Snapshot::of_entries((0..10).map(entry).collect(), 10).encode();
        assert!(matches!(
            Snapshot::decode(&good[..good.len() - 5]),
            Err(SnapshotError::Malformed(_))
        ));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bad_magic),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
