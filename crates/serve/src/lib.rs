//! `celeste-serve` — the catalog-service daemon.
//!
//! PR 7's [`CatalogStore`] made the catalog a queryable library
//! value; this crate makes it a *service*: a long-running process
//! that owns a store, optionally keeps ingesting from a live
//! campaign, and answers the full query API over TCP to many
//! concurrent clients. Four layers:
//!
//! - [`wire`] — the `SCQP` v1 length-prefixed little-endian frame
//!   protocol (magic, version, request id, typed payload; hardened
//!   decode in the style of the `SCKP` checkpoint codec).
//! - [`server`] — nonblocking accept loop + a bounded pool of
//!   dedicated handler threads, per-connection timeouts, max-frame
//!   guard, graceful shutdown via `CancelToken`.
//! - [`client`] — [`CatalogClient`], the typed blocking client.
//! - [`snapshot`] + [`evict`] — the `SCST` cell-grouped snapshot
//!   codec (atomic tmp+rename, fingerprint guard) and
//!   [`ServedStore`], which spills cold cells to the snapshot and
//!   faults them back in on demand (LRU by query touch).
//!
//! The one-call entry point is [`CatalogDaemon::start`]; the facade
//! crate wraps it as `Session::serve(addr, ServeConfig)`.
//!
//! [`CatalogStore`]: celeste_store::CatalogStore

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod evict;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use client::CatalogClient;
pub use evict::ServedStore;
pub use server::{CatalogServer, ServerHandle};
pub use snapshot::{Snapshot, SnapshotError};
pub use wire::{ErrorFrame, ErrorKind, WireError};

use celeste_store::{StoreConfig, StoreError};
use celeste_survey::catalog::Catalog;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Everything a catalog daemon can be tuned on.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Handler threads = maximum concurrently served connections
    /// (further accepted sockets queue until a handler frees up).
    pub max_connections: usize,
    /// Per-connection deadline for reading one full frame (also the
    /// idle keep-alive limit between requests).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Ceiling on inbound frame payloads; larger frames are refused
    /// with a typed error frame before any allocation.
    pub max_frame_bytes: usize,
    /// Snapshot file: loaded at startup if present (instant restart,
    /// zero refits), rewritten by eviction and
    /// [`CatalogDaemon::snapshot`].
    pub snapshot: Option<PathBuf>,
    /// Max entries kept in memory; 0 = unbounded. Nonzero requires
    /// `snapshot` (evicted cells spill there).
    pub max_resident_entries: usize,
    /// Sizing of the underlying [`celeste_store::CatalogStore`].
    pub store: StoreConfig,
    /// Write a final snapshot during [`CatalogDaemon::shutdown`].
    pub snapshot_on_shutdown: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame_bytes: 1 << 20,
            snapshot: None,
            max_resident_entries: 0,
            store: StoreConfig::default(),
            snapshot_on_shutdown: false,
        }
    }
}

/// A remote failure as reported by the server's error frame, with
/// the equivalent local error reconstructed as its source — so
/// `CelesteError::Serve → ServeError::Remote → RemoteError →
/// StoreError::InvalidQuery` chains exactly like the in-process
/// path.
#[derive(Debug)]
pub struct RemoteError {
    /// The error frame as received.
    pub frame: ErrorFrame,
    cause: Option<StoreError>,
}

impl RemoteError {
    /// Wrap a received error frame, reconstructing the typed local
    /// cause where the kind identifies one.
    pub fn new(frame: ErrorFrame) -> RemoteError {
        let cause = match frame.kind {
            ErrorKind::InvalidQuery => Some(StoreError::InvalidQuery(frame.message.clone())),
            _ => None,
        };
        RemoteError { frame, cause }
    }
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server reported: {}", self.frame)
    }
}

impl std::error::Error for RemoteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.cause
            .as_ref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Everything that can go wrong serving or querying a catalog over
/// the wire. Every variant chains its cause through
/// [`std::error::Error::source`].
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem I/O failed.
    Io(std::io::Error),
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The snapshot file failed to read, write, or verify.
    Snapshot(SnapshotError),
    /// The store rejected the query locally (client-side validation
    /// or a daemon answering in process).
    Query(StoreError),
    /// The server answered with an error frame.
    Remote(RemoteError),
    /// The peer broke the request/response protocol (wrong id echo,
    /// wrong frame direction, mid-frame hangup).
    Protocol(String),
    /// The daemon configuration is inconsistent.
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "catalog service I/O failed: {e}"),
            ServeError::Wire(e) => write!(f, "catalog wire protocol error: {e}"),
            ServeError::Snapshot(e) => write!(f, "catalog snapshot error: {e}"),
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Remote(e) => write!(f, "{e}"),
            ServeError::Protocol(m) => write!(f, "catalog protocol violation: {m}"),
            ServeError::Config(m) => write!(f, "invalid serve configuration: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Query(e) => Some(e),
            ServeError::Remote(e) => Some(e),
            ServeError::Protocol(_) | ServeError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> ServeError {
        ServeError::Snapshot(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        ServeError::Query(e)
    }
}

/// A running catalog daemon: a [`ServedStore`] plus the TCP server
/// answering for it. Keep ingesting through
/// [`CatalogDaemon::store`]`.store()` while it serves.
pub struct CatalogDaemon {
    store: Arc<ServedStore>,
    handle: ServerHandle,
    snapshot_on_shutdown: bool,
}

impl CatalogDaemon {
    /// Open (or restore from snapshot) the served store and start
    /// answering on `addr` (`"127.0.0.1:0"` picks an ephemeral
    /// port — read it back from [`CatalogDaemon::addr`]).
    pub fn start(
        addr: impl ToSocketAddrs,
        config: &ServeConfig,
    ) -> Result<CatalogDaemon, ServeError> {
        if config.snapshot_on_shutdown && config.snapshot.is_none() {
            return Err(ServeError::Config(
                "snapshot_on_shutdown requires a snapshot path".into(),
            ));
        }
        let store = Arc::new(ServedStore::open(
            config.store,
            config.snapshot.clone(),
            config.max_resident_entries,
        )?);
        let handle = CatalogServer::bind(addr, store.clone(), config)?;
        Ok(CatalogDaemon {
            store,
            handle,
            snapshot_on_shutdown: config.snapshot_on_shutdown,
        })
    }

    /// The address the daemon is answering on.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The served store — `store().store()` is the ingest surface a
    /// live campaign writes into.
    pub fn store(&self) -> &Arc<ServedStore> {
        &self.store
    }

    /// The full catalog (resident ∪ spilled), ascending id.
    pub fn catalog(&self) -> Result<Catalog, ServeError> {
        self.store.catalog()
    }

    /// Write a full snapshot now.
    pub fn snapshot(&self) -> Result<(), ServeError> {
        self.store.snapshot()
    }

    /// Stop accepting, drain handlers, and (if configured) write the
    /// final snapshot.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.handle.shutdown();
        if self.snapshot_on_shutdown {
            self.store.snapshot()?;
        }
        Ok(())
    }
}
