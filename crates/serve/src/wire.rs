//! `SCQP` v1 — the catalog query wire protocol.
//!
//! Frames are length-prefixed little-endian, built with the vendored
//! `bytes` cursor API exactly the way `SCKP` frames checkpoints:
//!
//! ```text
//! on wire:  len u32 | payload (len bytes)
//! payload:  magic "SCQP" | version u16 | request id u64 | kind u8 | body
//! ```
//!
//! Request kinds: 1 = self-describing [`CatalogQuery`] (entries only),
//! 2 = cone-with-separations, 3 = stats, 4 = ping. Response kinds:
//! 0x81 = entries, 0x82 = cone hits, 0x83 = stats, 0x84 = pong,
//! 0xFF = error frame. The request id is echoed verbatim in the
//! response so clients can detect desync.
//!
//! Decoding never panics and never preallocates more than the buffer
//! could possibly hold: every read is preceded by a `need()` length
//! check, counts go through `checked_mul`, and `Vec::with_capacity`
//! is capped by `remaining / MIN_ITEM_BYTES` — the same hardening the
//! `SCKP` checkpoint decoder established. Malformed input yields a
//! typed [`WireError`], and a server answers it with an
//! [`ErrorFrame`] before dropping the connection.
//!
//! Sky rects are reassembled as struct literals, not via
//! [`SkyRect::new`], whose debug assertion would turn inverted
//! garbage bounds into a panic; an inverted rect is instead a valid
//! value that simply covers no cells.

use bytes::{Buf, BufMut, BytesMut};
use celeste_store::{CatalogQuery, CatalogStoreStats, CellOccupancy, SourceFilter};
use celeste_survey::bands::Band;
use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::skygeom::{CellId, SkyCoord, SkyRect};

/// Frame magic: every SCQP payload starts with these four bytes.
pub const MAGIC: &[u8; 4] = b"SCQP";
/// Protocol version; peers reject anything else (typed, not silent).
pub const VERSION: u16 = 1;
/// Bytes of payload before the kind-specific body.
pub const HEADER_BYTES: usize = 4 + 2 + 8 + 1;
/// One encoded [`CatalogEntry`]: id + position + type + flux +
/// 4 colors + 4 shape parameters.
pub const ENTRY_BYTES: usize = 8 + 16 + 1 + 8 + 32 + 32;
/// One encoded cone hit: an entry plus its separation.
pub const CONE_HIT_BYTES: usize = ENTRY_BYTES + 8;
/// One encoded [`CellOccupancy`] row in a stats response.
pub const CELL_OCC_BYTES: usize = 1 + 4 + 4 + 4 + 8 + 8;

/// Typed decode/size failures. Never a panic: every malformed,
/// truncated, or oversized frame maps here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload is truncated, has a bad magic/kind/tag, or lies
    /// about a count.
    Malformed(String),
    /// The peer speaks a different SCQP version.
    UnsupportedVersion(u16),
    /// The frame's declared length exceeds the configured ceiling
    /// (checked before any allocation).
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "malformed SCQP frame: {m}"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported SCQP version {v} (speaking {VERSION})")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte ceiling")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// What went wrong, as carried by an [`ErrorFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The query failed the store's validation (non-finite center,
    /// negative radius, NaN flux threshold, ...). The connection
    /// stays open — the request was well-framed, just unanswerable.
    InvalidQuery,
    /// The peer's frame did not decode; the connection is dropped
    /// after this frame (framing may be desynced).
    Malformed,
    /// The peer's frame exceeded the size ceiling; dropped likewise.
    FrameTooLarge,
    /// The server failed internally (snapshot I/O, ...).
    Internal,
}

impl ErrorKind {
    fn code(self) -> u8 {
        match self {
            ErrorKind::InvalidQuery => 1,
            ErrorKind::Malformed => 2,
            ErrorKind::FrameTooLarge => 3,
            ErrorKind::Internal => 4,
        }
    }

    fn from_code(c: u8) -> Result<ErrorKind, WireError> {
        match c {
            1 => Ok(ErrorKind::InvalidQuery),
            2 => Ok(ErrorKind::Malformed),
            3 => Ok(ErrorKind::FrameTooLarge),
            4 => Ok(ErrorKind::Internal),
            other => Err(WireError::Malformed(format!(
                "unknown error-frame kind {other}"
            ))),
        }
    }
}

/// A server-to-client error report: the typed kind plus a human
/// message (UTF-8; decoded lossily so a mangled message can't mask
/// the error it describes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            ErrorKind::InvalidQuery => "invalid query",
            ErrorKind::Malformed => "malformed frame",
            ErrorKind::FrameTooLarge => "frame too large",
            ErrorKind::Internal => "internal server error",
        };
        write!(f, "{kind}: {}", self.message)
    }
}

/// A client-to-server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a self-describing catalog query; answers with entries.
    Query(CatalogQuery),
    /// Cone search answering with per-hit separations (the one query
    /// shape whose full answer [`CatalogQuery`] cannot carry).
    Cone {
        /// Cone axis.
        center: SkyCoord,
        /// Angular radius, arcseconds (inclusive).
        radius_arcsec: f64,
    },
    /// Fetch the store's occupancy/traffic counters.
    Stats,
    /// Liveness probe; answers [`Response::Pong`].
    Ping,
}

/// A server-to-client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Entries answering a [`Request::Query`].
    Entries(Vec<CatalogEntry>),
    /// Cone hits with separations answering a [`Request::Cone`].
    Cone(Vec<(CatalogEntry, f64)>),
    /// Counters answering a [`Request::Stats`].
    Stats(CatalogStoreStats),
    /// Liveness answer to [`Request::Ping`].
    Pong,
    /// The request could not be answered; see [`ErrorFrame::kind`]
    /// for whether the connection survives.
    Error(ErrorFrame),
}

/// Either side of the conversation, as decoded off the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// A client-to-server message.
    Request(Request),
    /// A server-to-client message.
    Response(Response),
}

/// One decoded SCQP payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-chosen id, echoed by the server.
    pub request_id: u64,
    /// The message itself.
    pub body: Body,
}

fn put_header(b: &mut BytesMut, request_id: u64, kind: u8) {
    b.put_slice(MAGIC);
    b.put_u16_le(VERSION);
    b.put_u64_le(request_id);
    b.put_u8(kind);
}

fn put_entry(b: &mut BytesMut, e: &CatalogEntry) {
    b.put_u64_le(e.id);
    b.put_f64_le(e.pos.ra);
    b.put_f64_le(e.pos.dec);
    b.put_u8(match e.source_type {
        SourceType::Star => 0,
        SourceType::Galaxy => 1,
    });
    b.put_f64_le(e.flux_r_nmgy);
    for c in e.colors {
        b.put_f64_le(c);
    }
    for v in [
        e.shape.frac_dev,
        e.shape.axis_ratio,
        e.shape.angle_rad,
        e.shape.radius_arcsec,
    ] {
        b.put_f64_le(v);
    }
}

fn put_rect(b: &mut BytesMut, r: &SkyRect) {
    b.put_f64_le(r.ra_min);
    b.put_f64_le(r.ra_max);
    b.put_f64_le(r.dec_min);
    b.put_f64_le(r.dec_max);
}

fn put_filter(b: &mut BytesMut, f: &SourceFilter) {
    let mut flags = 0u8;
    if f.source_type.is_some() {
        flags |= 1;
    }
    if f.min_flux.is_some() {
        flags |= 2;
    }
    b.put_u8(flags);
    b.put_u8(match f.source_type {
        Some(SourceType::Galaxy) => 1,
        _ => 0,
    });
    let (band, min) = f
        .min_flux
        .map_or((0u8, 0.0), |(band, min)| (band.index() as u8, min));
    b.put_u8(band);
    b.put_f64_le(min);
}

fn finish(b: BytesMut) -> Vec<u8> {
    let payload = b.freeze().to_vec();
    let mut out = Vec::with_capacity(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Encode a request as a full on-wire frame (length prefix included).
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut b = BytesMut::with_capacity(HEADER_BYTES + 64);
    match req {
        Request::Query(q) => {
            put_header(&mut b, request_id, 1);
            match q {
                CatalogQuery::Cone {
                    center,
                    radius_arcsec,
                } => {
                    b.put_u8(0);
                    b.put_f64_le(center.ra);
                    b.put_f64_le(center.dec);
                    b.put_f64_le(*radius_arcsec);
                }
                CatalogQuery::Rect { rect, filter } => {
                    b.put_u8(1);
                    put_rect(&mut b, rect);
                    put_filter(&mut b, filter);
                }
                CatalogQuery::BrightestN { n, within } => {
                    b.put_u8(2);
                    b.put_u32_le((*n).min(u32::MAX as usize) as u32);
                    match within {
                        Some(rect) => {
                            b.put_u8(1);
                            put_rect(&mut b, rect);
                        }
                        None => b.put_u8(0),
                    }
                }
            }
        }
        Request::Cone {
            center,
            radius_arcsec,
        } => {
            put_header(&mut b, request_id, 2);
            b.put_f64_le(center.ra);
            b.put_f64_le(center.dec);
            b.put_f64_le(*radius_arcsec);
        }
        Request::Stats => put_header(&mut b, request_id, 3),
        Request::Ping => put_header(&mut b, request_id, 4),
    }
    finish(b)
}

/// Encode a response as a full on-wire frame (length prefix included).
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut b = BytesMut::with_capacity(HEADER_BYTES + 64);
    match resp {
        Response::Entries(entries) => {
            put_header(&mut b, request_id, 0x81);
            b.put_u32_le(entries.len() as u32);
            for e in entries {
                put_entry(&mut b, e);
            }
        }
        Response::Cone(hits) => {
            put_header(&mut b, request_id, 0x82);
            b.put_u32_le(hits.len() as u32);
            for (e, sep) in hits {
                put_entry(&mut b, e);
                b.put_f64_le(*sep);
            }
        }
        Response::Stats(s) => {
            put_header(&mut b, request_id, 0x83);
            for v in [
                s.entries as u64,
                s.cells as u64,
                s.regions_ingested,
                s.cache_entries as u64,
                s.cache_hits,
                s.queries,
            ] {
                b.put_u64_le(v);
            }
            b.put_u32_le(s.per_cell.len() as u32);
            for o in &s.per_cell {
                b.put_u8(o.cell.level);
                b.put_u32_le(o.cell.ix);
                b.put_u32_le(o.cell.iy);
                b.put_u32_le(o.entries.min(u32::MAX as usize) as u32);
                b.put_u64_le(o.touches);
                b.put_u64_le(o.last_touch);
            }
        }
        Response::Pong => put_header(&mut b, request_id, 0x84),
        Response::Error(e) => {
            put_header(&mut b, request_id, 0xFF);
            b.put_u8(e.kind.code());
            let msg = e.message.as_bytes();
            b.put_u32_le(msg.len() as u32);
            b.put_slice(msg);
        }
    }
    finish(b)
}

/// Append one fixed-width ([`ENTRY_BYTES`]) entry encoding — shared
/// with the `SCST` snapshot codec so spilled cells and wire responses
/// are byte-compatible.
pub fn put_entry_bytes(b: &mut BytesMut, e: &CatalogEntry) {
    put_entry(b, e);
}

/// Decode one fixed-width entry. The caller must have length-checked
/// [`ENTRY_BYTES`] remaining.
pub fn get_entry_bytes(buf: &mut &[u8]) -> Result<CatalogEntry, WireError> {
    get_entry(buf)
}

fn need(buf: &&[u8], n: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Malformed(format!("truncated reading {what}")))
    } else {
        Ok(())
    }
}

fn get_entry(buf: &mut &[u8]) -> Result<CatalogEntry, WireError> {
    // Caller has `need`ed ENTRY_BYTES.
    let id = buf.get_u64_le();
    let ra = buf.get_f64_le();
    let dec = buf.get_f64_le();
    let source_type = match buf.get_u8() {
        0 => SourceType::Star,
        1 => SourceType::Galaxy,
        other => return Err(WireError::Malformed(format!("unknown source type {other}"))),
    };
    let flux_r_nmgy = buf.get_f64_le();
    let mut colors = [0.0f64; 4];
    for c in &mut colors {
        *c = buf.get_f64_le();
    }
    let mut shape = [0.0f64; 4];
    for s in &mut shape {
        *s = buf.get_f64_le();
    }
    Ok(CatalogEntry {
        id,
        pos: SkyCoord { ra, dec },
        source_type,
        flux_r_nmgy,
        colors,
        shape: GalaxyShape {
            frac_dev: shape[0],
            axis_ratio: shape[1],
            angle_rad: shape[2],
            radius_arcsec: shape[3],
        },
    })
}

fn get_rect(buf: &mut &[u8]) -> SkyRect {
    // Struct literal, NOT SkyRect::new: its debug assertion would
    // panic on inverted garbage bounds; as a plain value an inverted
    // rect just covers no cells and matches nothing.
    let ra_min = buf.get_f64_le();
    let ra_max = buf.get_f64_le();
    let dec_min = buf.get_f64_le();
    let dec_max = buf.get_f64_le();
    SkyRect {
        ra_min,
        ra_max,
        dec_min,
        dec_max,
    }
}

fn get_filter(buf: &mut &[u8]) -> Result<SourceFilter, WireError> {
    let flags = buf.get_u8();
    if flags & !3 != 0 {
        return Err(WireError::Malformed(format!(
            "unknown filter flags {flags:#04x}"
        )));
    }
    let type_code = buf.get_u8();
    let band_code = buf.get_u8() as usize;
    let min = buf.get_f64_le();
    let source_type = if flags & 1 != 0 {
        Some(match type_code {
            0 => SourceType::Star,
            1 => SourceType::Galaxy,
            other => {
                return Err(WireError::Malformed(format!(
                    "unknown source type {other} in filter"
                )))
            }
        })
    } else {
        None
    };
    let min_flux = if flags & 2 != 0 {
        let band = *Band::ALL
            .get(band_code)
            .ok_or_else(|| WireError::Malformed(format!("band index {band_code} out of range")))?;
        Some((band, min))
    } else {
        None
    };
    Ok(SourceFilter {
        source_type,
        min_flux,
    })
}

const FILTER_BYTES: usize = 1 + 1 + 1 + 8;

fn get_query(buf: &mut &[u8]) -> Result<CatalogQuery, WireError> {
    need(buf, 1, "query tag")?;
    match buf.get_u8() {
        0 => {
            need(buf, 24, "cone query")?;
            let ra = buf.get_f64_le();
            let dec = buf.get_f64_le();
            let radius_arcsec = buf.get_f64_le();
            Ok(CatalogQuery::Cone {
                center: SkyCoord { ra, dec },
                radius_arcsec,
            })
        }
        1 => {
            need(buf, 32 + FILTER_BYTES, "rect query")?;
            let rect = get_rect(buf);
            let filter = get_filter(buf)?;
            Ok(CatalogQuery::Rect { rect, filter })
        }
        2 => {
            need(buf, 4 + 1, "brightest-n query")?;
            let n = buf.get_u32_le() as usize;
            let within = match buf.get_u8() {
                0 => None,
                1 => {
                    need(buf, 32, "brightest-n window")?;
                    Some(get_rect(buf))
                }
                other => return Err(WireError::Malformed(format!("unknown within tag {other}"))),
            };
            Ok(CatalogQuery::BrightestN { n, within })
        }
        other => Err(WireError::Malformed(format!("unknown query tag {other}"))),
    }
}

fn check_drained(buf: &[u8]) -> Result<(), WireError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(WireError::Malformed(format!(
            "{} trailing bytes after body",
            buf.len()
        )))
    }
}

/// Decode one SCQP payload (the bytes *after* the length prefix).
pub fn decode_payload(mut buf: &[u8]) -> Result<Frame, WireError> {
    need(&buf, HEADER_BYTES, "frame header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WireError::Malformed("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let request_id = buf.get_u64_le();
    let kind = buf.get_u8();
    let body = match kind {
        1 => Body::Request(Request::Query(get_query(&mut buf)?)),
        2 => {
            need(&buf, 24, "cone request")?;
            let ra = buf.get_f64_le();
            let dec = buf.get_f64_le();
            let radius_arcsec = buf.get_f64_le();
            Body::Request(Request::Cone {
                center: SkyCoord { ra, dec },
                radius_arcsec,
            })
        }
        3 => Body::Request(Request::Stats),
        4 => Body::Request(Request::Ping),
        0x81 => {
            need(&buf, 4, "entry count")?;
            let n = buf.get_u32_le() as usize;
            let body_bytes = n
                .checked_mul(ENTRY_BYTES)
                .ok_or_else(|| WireError::Malformed("entry count overflows body".into()))?;
            need(&buf, body_bytes, "entries")?;
            // `need` proved the bytes exist; bounded reservation.
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_entry(&mut buf)?);
            }
            Body::Response(Response::Entries(entries))
        }
        0x82 => {
            need(&buf, 4, "hit count")?;
            let n = buf.get_u32_le() as usize;
            let body_bytes = n
                .checked_mul(CONE_HIT_BYTES)
                .ok_or_else(|| WireError::Malformed("hit count overflows body".into()))?;
            need(&buf, body_bytes, "cone hits")?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let e = get_entry(&mut buf)?;
                let sep = buf.get_f64_le();
                hits.push((e, sep));
            }
            Body::Response(Response::Cone(hits))
        }
        0x83 => {
            need(&buf, 6 * 8 + 4, "stats header")?;
            let mut counters = [0u64; 6];
            for c in &mut counters {
                *c = buf.get_u64_le();
            }
            let n = buf.get_u32_le() as usize;
            let body_bytes = n
                .checked_mul(CELL_OCC_BYTES)
                .ok_or_else(|| WireError::Malformed("cell count overflows body".into()))?;
            need(&buf, body_bytes, "per-cell stats")?;
            let mut per_cell = Vec::with_capacity(n);
            for _ in 0..n {
                let level = buf.get_u8();
                let ix = buf.get_u32_le();
                let iy = buf.get_u32_le();
                let entries = buf.get_u32_le() as usize;
                let touches = buf.get_u64_le();
                let last_touch = buf.get_u64_le();
                per_cell.push(CellOccupancy {
                    cell: CellId { level, ix, iy },
                    entries,
                    touches,
                    last_touch,
                });
            }
            Body::Response(Response::Stats(CatalogStoreStats {
                entries: counters[0] as usize,
                cells: counters[1] as usize,
                regions_ingested: counters[2],
                cache_entries: counters[3] as usize,
                cache_hits: counters[4],
                queries: counters[5],
                per_cell,
            }))
        }
        0x84 => Body::Response(Response::Pong),
        0xFF => {
            need(&buf, 1 + 4, "error frame header")?;
            let kind = ErrorKind::from_code(buf.get_u8())?;
            let len = buf.get_u32_le() as usize;
            need(&buf, len, "error message")?;
            let mut msg = vec![0u8; len];
            buf.copy_to_slice(&mut msg);
            Body::Response(Response::Error(ErrorFrame {
                kind,
                message: String::from_utf8_lossy(&msg).into_owned(),
            }))
        }
        other => {
            return Err(WireError::Malformed(format!(
                "unknown frame kind {other:#04x}"
            )))
        }
    };
    check_drained(buf)?;
    Ok(Frame { request_id, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> CatalogEntry {
        CatalogEntry {
            id,
            pos: SkyCoord::new(
                (id as f64 * 13.7) % 360.0,
                ((id as f64 * 7.3) % 160.0) - 80.0,
            ),
            source_type: if id.is_multiple_of(2) {
                SourceType::Star
            } else {
                SourceType::Galaxy
            },
            flux_r_nmgy: id as f64 * 0.5 - 3.0,
            colors: [0.1, -0.2, 0.3, -0.4],
            shape: GalaxyShape {
                frac_dev: 0.3,
                axis_ratio: 0.7,
                angle_rad: 1.1,
                radius_arcsec: 2.2,
            },
        }
    }

    fn roundtrip(frame: &[u8]) -> Frame {
        let (len, payload) = frame.split_at(4);
        assert_eq!(
            u32::from_le_bytes(len.try_into().unwrap()) as usize,
            payload.len()
        );
        decode_payload(payload).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Query(CatalogQuery::Cone {
                center: SkyCoord::new(10.0, -5.0),
                radius_arcsec: 42.0,
            }),
            Request::Query(CatalogQuery::Rect {
                rect: SkyRect::new(0.0, 1.0, -1.0, 1.0),
                filter: SourceFilter {
                    source_type: Some(SourceType::Galaxy),
                    min_flux: Some((Band::Z, 0.25)),
                },
            }),
            Request::Query(CatalogQuery::BrightestN {
                n: 17,
                within: Some(SkyRect::new(5.0, 6.0, 0.0, 2.0)),
            }),
            Request::Query(CatalogQuery::BrightestN { n: 3, within: None }),
            Request::Cone {
                center: SkyCoord::new(359.9, 0.1),
                radius_arcsec: 3600.0,
            },
            Request::Stats,
            Request::Ping,
        ];
        for (i, req) in reqs.iter().enumerate() {
            let frame = roundtrip(&encode_request(i as u64 + 7, req));
            assert_eq!(frame.request_id, i as u64 + 7);
            assert_eq!(frame.body, Body::Request(req.clone()), "request {i}");
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let entries: Vec<CatalogEntry> = (0..9).map(entry).collect();
        let resps = [
            Response::Entries(entries.clone()),
            Response::Cone(
                entries
                    .iter()
                    .map(|e| (e.clone(), e.id as f64 * 0.9))
                    .collect(),
            ),
            Response::Stats(CatalogStoreStats {
                entries: 9,
                cells: 2,
                regions_ingested: 4,
                cache_entries: 3,
                cache_hits: 1,
                queries: 55,
                per_cell: vec![CellOccupancy {
                    cell: CellId {
                        level: 10,
                        ix: 3,
                        iy: 9,
                    },
                    entries: 9,
                    touches: 12,
                    last_touch: 55,
                }],
            }),
            Response::Pong,
            Response::Error(ErrorFrame {
                kind: ErrorKind::InvalidQuery,
                message: "cone radius must be finite".into(),
            }),
        ];
        for resp in &resps {
            let frame = roundtrip(&encode_response(99, resp));
            assert_eq!(frame.request_id, 99);
            match (&frame.body, resp) {
                (Body::Response(Response::Entries(got)), Response::Entries(want)) => {
                    for (g, w) in got.iter().zip(want) {
                        assert_eq!(g.pos.ra.to_bits(), w.pos.ra.to_bits());
                        assert_eq!(g.flux_r_nmgy.to_bits(), w.flux_r_nmgy.to_bits());
                    }
                    assert_eq!(got, want);
                }
                (Body::Response(got), want) => assert_eq!(got, want),
                other => panic!("decoded a request from a response: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        let good = encode_request(1, &Request::Ping);
        let payload = &good[4..];
        assert!(matches!(
            decode_payload(&payload[..payload.len() - 1]),
            Err(WireError::Malformed(_))
        ));
        let mut bad_magic = payload.to_vec();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_payload(&bad_magic),
            Err(WireError::Malformed(_))
        ));
        let mut bad_version = payload.to_vec();
        bad_version[4] = 9;
        assert!(matches!(
            decode_payload(&bad_version),
            Err(WireError::UnsupportedVersion(9))
        ));
        // Trailing garbage after a complete body is rejected, not
        // silently ignored (it would desync framing).
        let mut trailing = payload.to_vec();
        trailing.push(0);
        assert!(matches!(
            decode_payload(&trailing),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn length_lying_counts_are_rejected_without_huge_prealloc() {
        // An Entries response claiming u32::MAX entries but carrying
        // none: must be a typed error, and must not reserve
        // gigabytes first.
        let mut b = BytesMut::with_capacity(HEADER_BYTES + 4);
        put_header(&mut b, 5, 0x81);
        b.put_u32_le(u32::MAX);
        let payload = b.freeze().to_vec();
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::Malformed(_))
        ));
    }
}
