//! Daemon smoke: ephemeral port, real sockets, typed errors,
//! graceful shutdown. The full campaign-parity suite lives in
//! `celeste-tests`; this one has no survey dependency and runs with
//! the crate's own tests.

use celeste_serve::{CatalogClient, CatalogDaemon, ServeConfig, ServeError};
use celeste_store::CatalogQuery;
use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::skygeom::{SkyCoord, SkyRect};
use std::io::{Read, Write};

fn entry(id: u64) -> CatalogEntry {
    CatalogEntry {
        id,
        pos: SkyCoord::new(
            (id as f64 * 31.0) % 360.0,
            ((id as f64 * 7.0) % 160.0) - 80.0,
        ),
        source_type: if id.is_multiple_of(2) {
            SourceType::Star
        } else {
            SourceType::Galaxy
        },
        flux_r_nmgy: 1.0 + id as f64,
        colors: [0.1, 0.2, 0.3, 0.4],
        shape: GalaxyShape::round_disk(1.2),
    }
}

#[test]
fn serves_queries_over_tcp() {
    let daemon = CatalogDaemon::start("127.0.0.1:0", &ServeConfig::default()).unwrap();
    for id in 0..40 {
        daemon.store().store().insert(entry(id));
    }
    let mut client = CatalogClient::connect(daemon.addr()).unwrap();
    client.ping().unwrap();

    let store = daemon.store().store();
    let queries = [
        CatalogQuery::BrightestN { n: 7, within: None },
        CatalogQuery::Rect {
            rect: SkyRect::new(0.0, 180.0, -90.0, 90.0),
            filter: Default::default(),
        },
        CatalogQuery::Cone {
            center: SkyCoord::new(31.0, -73.0),
            radius_arcsec: 500_000.0,
        },
    ];
    for q in &queries {
        let remote = client.query(q).unwrap();
        let local = store.query(q).unwrap();
        assert_eq!(remote.len(), local.len());
        for (r, l) in remote.iter().zip(&local) {
            assert_eq!(r.id, l.id);
            assert_eq!(r.pos.ra.to_bits(), l.pos.ra.to_bits());
            assert_eq!(r.flux_r_nmgy.to_bits(), l.flux_r_nmgy.to_bits());
        }
    }
    // Cone with separations, bit-identical.
    let center = SkyCoord::new(31.0, -73.0);
    let remote = client.cone_search(&center, 500_000.0).unwrap();
    let local = store.cone_search(&center, 500_000.0).unwrap();
    assert_eq!(remote.len(), local.len());
    for ((re, rs), (le, ls)) in remote.iter().zip(&local) {
        assert_eq!(re.id, le.id);
        assert_eq!(rs.to_bits(), ls.to_bits());
    }
    // Stats round trip.
    let stats = client.stats().unwrap();
    assert_eq!(stats.entries, 40);
    assert!(stats.queries > 0);
    assert_eq!(stats.per_cell.len(), stats.cells);

    daemon.shutdown().unwrap();
}

#[test]
fn invalid_query_keeps_connection_and_chains_source() {
    let daemon = CatalogDaemon::start("127.0.0.1:0", &ServeConfig::default()).unwrap();
    daemon.store().store().insert(entry(1));
    let mut client = CatalogClient::connect(daemon.addr()).unwrap();

    let err = client
        .query(&CatalogQuery::Cone {
            center: SkyCoord::new(f64::NAN, 0.0),
            radius_arcsec: 1.0,
        })
        .unwrap_err();
    // Full source chain: ServeError::Remote → RemoteError →
    // StoreError::InvalidQuery.
    let remote = match &err {
        ServeError::Remote(r) => r,
        other => panic!("want Remote, got {other:?}"),
    };
    let source = std::error::Error::source(remote).expect("remote error must chain its cause");
    assert!(
        source.to_string().contains("non-finite"),
        "source must be the store's validation error, got: {source}"
    );
    // The connection survives a validation error: next query works.
    let ok = client
        .query(&CatalogQuery::BrightestN { n: 1, within: None })
        .unwrap();
    assert_eq!(ok.len(), 1);
    daemon.shutdown().unwrap();
}

#[test]
fn garbage_frames_get_typed_error_and_daemon_survives() {
    let daemon = CatalogDaemon::start("127.0.0.1:0", &ServeConfig::default()).unwrap();
    daemon.store().store().insert(entry(2));
    let addr = daemon.addr();

    // Raw garbage after a plausible length prefix: the server must
    // answer a typed error frame and close, not panic.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let garbage = [42u8; 32];
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    assert!(!reply.is_empty(), "server must answer before closing");
    let len = u32::from_le_bytes(reply[..4].try_into().unwrap()) as usize;
    let frame = celeste_serve::wire::decode_payload(&reply[4..4 + len]).unwrap();
    match frame.body {
        celeste_serve::wire::Body::Response(celeste_serve::wire::Response::Error(e)) => {
            assert_eq!(e.kind, celeste_serve::ErrorKind::Malformed);
        }
        other => panic!("want error frame, got {other:?}"),
    }
    drop(raw);

    // An oversized frame is refused before allocation.
    let mut big = std::net::TcpStream::connect(addr).unwrap();
    big.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    big.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let mut reply = Vec::new();
    big.read_to_end(&mut reply).unwrap();
    let len = u32::from_le_bytes(reply[..4].try_into().unwrap()) as usize;
    let frame = celeste_serve::wire::decode_payload(&reply[4..4 + len]).unwrap();
    match frame.body {
        celeste_serve::wire::Body::Response(celeste_serve::wire::Response::Error(e)) => {
            assert_eq!(e.kind, celeste_serve::ErrorKind::FrameTooLarge);
        }
        other => panic!("want error frame, got {other:?}"),
    }
    drop(big);

    // The daemon is still alive and correct after both abuses.
    let mut client = CatalogClient::connect(addr).unwrap();
    client.ping().unwrap();
    assert_eq!(
        client
            .query(&CatalogQuery::BrightestN {
                n: 10,
                within: None
            })
            .unwrap()
            .len(),
        1
    );
    daemon.shutdown().unwrap();
}
