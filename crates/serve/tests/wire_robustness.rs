//! Decode-robustness properties for the `SCQP` wire codec and the
//! `SCST` snapshot codec: truncated, bit-flipped, length-lying, and
//! arbitrary-garbage inputs must come back as typed [`WireError`]s /
//! [`SnapshotError`]s (or, for flips the fingerprint cannot see, a
//! structurally bounded `Ok`) — never a panic, never a read past the
//! buffer, never an attacker-sized preallocation. Mirrors the `SCKP`
//! suite in `sched/tests/checkpoint_robustness.rs`.

use celeste_sched::fault::mix64;
use celeste_serve::wire::{
    decode_payload, encode_request, encode_response, ErrorFrame, ErrorKind, Request, Response,
    WireError, HEADER_BYTES,
};
use celeste_serve::{Snapshot, SnapshotError};
use celeste_store::{CatalogQuery, CatalogStoreStats, CellOccupancy, SourceFilter};
use celeste_survey::bands::Band;
use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::skygeom::{CellId, SkyCoord, SkyRect};
use proptest::prelude::*;

fn sample_entry(seed: u64) -> CatalogEntry {
    let h = mix64(seed);
    CatalogEntry {
        id: h % 4096,
        pos: SkyCoord::new((h % 360) as f64 + 0.25, ((h % 160) as f64 / 2.0) - 40.0),
        source_type: if h.is_multiple_of(2) {
            SourceType::Star
        } else {
            SourceType::Galaxy
        },
        flux_r_nmgy: (h % 1000) as f64 * 0.03,
        colors: [0.1, -0.2, 0.3, (h % 7) as f64 * 0.1],
        shape: GalaxyShape {
            frac_dev: (h % 10) as f64 / 10.0,
            axis_ratio: 0.5,
            angle_rad: 1.0,
            radius_arcsec: 2.0 + (h % 5) as f64,
        },
    }
}

/// A deterministic but irregular valid payload (the bytes after the
/// length prefix): `seed` picks the message kind and the body sizes,
/// covering every request and response shape the protocol has.
fn sample_payload(seed: u64) -> Vec<u8> {
    let h = mix64(seed);
    let rect = SkyRect::new(
        (h % 100) as f64,
        (h % 100) as f64 + 5.0,
        -10.0,
        (h % 40) as f64,
    );
    let entries: Vec<CatalogEntry> = (0..h % 5).map(|i| sample_entry(h ^ i)).collect();
    let frame = match h % 10 {
        0 => encode_request(
            h,
            &Request::Query(CatalogQuery::Cone {
                center: SkyCoord::new((h % 360) as f64, 0.0),
                radius_arcsec: (h % 7200) as f64,
            }),
        ),
        1 => encode_request(
            h,
            &Request::Query(CatalogQuery::Rect {
                rect,
                filter: SourceFilter {
                    source_type: (h.is_multiple_of(3)).then_some(SourceType::Galaxy),
                    min_flux: (h % 3 == 1).then_some((Band::ALL[(h % 5) as usize], 0.5)),
                },
            }),
        ),
        2 => encode_request(
            h,
            &Request::Query(CatalogQuery::BrightestN {
                n: (h % 64) as usize,
                within: (h.is_multiple_of(2)).then_some(rect),
            }),
        ),
        3 => encode_request(
            h,
            &Request::Cone {
                center: SkyCoord::new(1.0, 2.0),
                radius_arcsec: 60.0,
            },
        ),
        4 => encode_request(h, &Request::Stats),
        5 => encode_request(h, &Request::Ping),
        6 => encode_response(h, &Response::Entries(entries)),
        7 => encode_response(
            h,
            &Response::Cone(entries.into_iter().map(|e| (e, 0.5)).collect()),
        ),
        8 => encode_response(
            h,
            &Response::Stats(CatalogStoreStats {
                entries: (h % 100) as usize,
                cells: (h % 10) as usize,
                regions_ingested: h % 50,
                cache_entries: 3,
                cache_hits: 1,
                queries: h % 1000,
                per_cell: (0..h % 4)
                    .map(|i| CellOccupancy {
                        cell: CellId {
                            level: 10,
                            ix: i as u32,
                            iy: (h % 7) as u32,
                        },
                        entries: (h % 30) as usize,
                        touches: h % 13,
                        last_touch: h % 1000,
                    })
                    .collect(),
            }),
        ),
        _ => encode_response(
            h,
            &Response::Error(ErrorFrame {
                kind: match h % 4 {
                    0 => ErrorKind::InvalidQuery,
                    1 => ErrorKind::Malformed,
                    2 => ErrorKind::FrameTooLarge,
                    _ => ErrorKind::Internal,
                },
                message: "x".repeat((h % 40) as usize),
            }),
        ),
    };
    frame[4..].to_vec()
}

fn sample_snapshot(seed: u64) -> Snapshot {
    let h = mix64(seed);
    let n = h % 40 + 1;
    Snapshot::of_entries((0..n).map(|i| sample_entry(h ^ (i << 8))).collect(), 10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every strict prefix of a valid SCQP payload is a typed
    /// Malformed error: the format carries explicit counts, so
    /// running out of bytes early is always detectable.
    #[test]
    fn scqp_truncation_is_a_typed_error(seed in 0u64..1_000_000, frac in 0.0..1.0f64) {
        let payload = sample_payload(seed);
        let cut = ((payload.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            matches!(
                decode_payload(&payload[..cut]),
                Err(WireError::Malformed(_))
            ),
            "truncation to {cut}/{} bytes must be Malformed",
            payload.len()
        );
    }

    /// Flipping any single bit of an SCQP payload never panics: the
    /// result is a typed error or a decode whose structure is bounded
    /// by the buffer (lied counts cannot inflate the output — the
    /// `need` checks cap every reservation at what the bytes hold).
    #[test]
    fn scqp_single_bit_flip_never_panics(seed in 0u64..1_000_000, pos in 0.0..1.0f64, bit in 0u32..8) {
        let mut payload = sample_payload(seed);
        let n = payload.len();
        let idx = ((n - 1) as f64 * pos) as usize;
        payload[idx] ^= 1 << bit;
        match decode_payload(&payload) {
            Err(WireError::Malformed(_)) | Err(WireError::UnsupportedVersion(_)) | Ok(_) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other:?}"),
        }
    }

    /// Arbitrary garbage never panics and never over-reads.
    #[test]
    fn scqp_arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = decode_payload(&bytes);
    }

    /// Garbage behind a valid header prefix (magic + version) drives
    /// the per-kind body decoders: still typed, still panic-free.
    #[test]
    fn scqp_garbage_with_valid_header_never_panics(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let mut buf = b"SCQP\x01\x00".to_vec();
        buf.extend(bytes.into_iter().map(|b| b as u8));
        let _ = decode_payload(&buf);
    }

    /// Every strict prefix of a valid SCST snapshot is a typed
    /// Malformed error (a prefix can never pass the trailing-bytes
    /// and count checks simultaneously).
    #[test]
    fn scst_truncation_is_a_typed_error(seed in 0u64..1_000_000, frac in 0.0..1.0f64) {
        let bytes = sample_snapshot(seed).encode();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            matches!(
                Snapshot::decode(&bytes[..cut]),
                Err(SnapshotError::Malformed(_))
            ),
            "truncation to {cut}/{} bytes must be Malformed",
            bytes.len()
        );
    }

    /// Flipping any single bit of a snapshot never panics and never
    /// yields a silently wrong catalog: either a typed structural
    /// error, a fingerprint mismatch, or — for flips in the cell-id
    /// fields the fingerprint does not cover — an `Ok` carrying
    /// exactly the original entries (the fingerprint still verified).
    #[test]
    fn scst_single_bit_flip_is_caught_or_content_preserving(
        seed in 0u64..1_000_000, pos in 0.0..1.0f64, bit in 0u32..8
    ) {
        let snap = sample_snapshot(seed);
        let mut bytes = snap.encode();
        let n = bytes.len();
        let idx = ((n - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        match Snapshot::decode(&bytes) {
            Err(SnapshotError::Malformed(_))
            | Err(SnapshotError::FingerprintMismatch { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other:?}"),
            Ok(decoded) => {
                // The fingerprint verified, so the content survived
                // the flip bit-exactly; only cell grouping (or the
                // level byte) can differ.
                let got = decoded.entries();
                let want = snap.entries();
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(g.id, w.id);
                    prop_assert_eq!(g.flux_r_nmgy.to_bits(), w.flux_r_nmgy.to_bits());
                    prop_assert_eq!(g.pos.ra.to_bits(), w.pos.ra.to_bits());
                }
            }
        }
    }

    /// Arbitrary garbage never panics the snapshot decoder.
    #[test]
    fn scst_arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = Snapshot::decode(&bytes);
    }

    /// Garbage behind a valid SCST header never panics.
    #[test]
    fn scst_garbage_with_valid_header_never_panics(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let mut buf = b"SCST\x01\x00".to_vec();
        buf.extend(bytes.into_iter().map(|b| b as u8));
        let _ = Snapshot::decode(&buf);
    }
}

/// Length-lying counts: count fields overwritten with huge values
/// must be rejected with a typed error, without reserving
/// attacker-sized memory or reading past the buffer. (Deterministic
/// offsets, so a plain test, not a property.)
#[test]
fn length_lying_counts_are_rejected() {
    // SCQP Entries response: count lives right after the header.
    let entries: Vec<CatalogEntry> = (0..3).map(sample_entry).collect();
    let frame = encode_response(9, &Response::Entries(entries));
    let mut payload = frame[4..].to_vec();
    payload[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_payload(&payload),
        Err(WireError::Malformed(_))
    ));

    // SCST: n_cells at offset 15 (magic 4 + version 2 + fp 8 + level 1),
    // first cell's n_entries at 19 + 9 = 28.
    let bytes = sample_snapshot(7).encode();
    let mut lie = bytes.clone();
    lie[15..19].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Snapshot::decode(&lie),
        Err(SnapshotError::Malformed(_))
    ));
    let mut lie = bytes;
    lie[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
    match Snapshot::decode(&lie) {
        Err(SnapshotError::Malformed(msg)) => {
            assert!(
                msg.contains("truncated") || msg.contains("overflow"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("want Malformed, got {other:?}"),
    }
}

/// The valid samples the mutation properties start from must
/// themselves decode, or the properties above are vacuous.
#[test]
fn samples_round_trip() {
    for seed in 0..32 {
        let payload = sample_payload(seed);
        decode_payload(&payload).expect("valid payload must decode");
        let snap = sample_snapshot(seed);
        let decoded = Snapshot::decode(&snap.encode()).expect("valid snapshot must decode");
        assert_eq!(decoded, snap);
    }
}
