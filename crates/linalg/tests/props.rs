//! Property-based tests for the linear algebra kernels.

use celeste_linalg::{nnls, solve_tr_subproblem, vecops, Cholesky, Ldlt, Mat, SymEigen};
use proptest::prelude::*;

/// Strategy: a random symmetric n×n matrix with entries in ±scale.
fn sym_mat(n: usize, scale: f64) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-scale..scale, n * n).prop_map(move |v| {
        let mut m = Mat::from_rows(n, n, &v);
        m.symmetrize();
        m
    })
}

/// Strategy: a random SPD matrix B Bᵀ + εI.
fn spd_mat(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-1.0..1.0_f64, n * n).prop_map(move |v| {
        let b = Mat::from_rows(n, n, &v);
        let mut a = b.matmul(&b.t());
        a.shift_diag(0.5);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs_spd(a in spd_mat(8)) {
        let ch = Cholesky::new(&a).unwrap();
        let mut recon = ch.l().matmul(&ch.l().t());
        recon.add_scaled(-1.0, &a);
        prop_assert!(recon.max_abs() < 1e-8 * a.max_abs().max(1.0));
    }

    #[test]
    fn cholesky_solve_residual_small(a in spd_mat(8), b in prop::collection::vec(-10.0..10.0f64, 8)) {
        let x = Cholesky::new(&a).unwrap().solve(&b);
        let r = vecops::sub(&a.matvec(&x), &b);
        prop_assert!(vecops::max_abs(&r) < 1e-7 * vecops::max_abs(&b).max(1.0));
    }

    #[test]
    fn ldlt_inertia_matches_eigen_signs(a in sym_mat(6, 2.0)) {
        // Skip near-singular draws where inertia is ill-defined.
        let e = SymEigen::new(&a);
        let min_gap = e.values().iter().fold(f64::MAX, |m, &v| m.min(v.abs()));
        prop_assume!(min_gap > 1e-6);
        if let Ok(f) = Ldlt::new(&a) {
            let neg_eigen = e.values().iter().filter(|&&v| v < 0.0).count();
            prop_assert_eq!(f.negative_pivots(), neg_eigen);
        }
    }

    #[test]
    fn eigen_residual_and_orthogonality(a in sym_mat(10, 5.0)) {
        let e = SymEigen::new(&a);
        // A V = V diag(λ)
        for j in 0..10 {
            let v: Vec<f64> = (0..10).map(|i| e.vectors()[(i, j)]).collect();
            let av = a.matvec(&v);
            let lv: Vec<f64> = v.iter().map(|&x| x * e.values()[j]).collect();
            let res = vecops::sub(&av, &lv);
            prop_assert!(vecops::max_abs(&res) < 1e-8 * a.max_abs().max(1.0));
        }
        // Ascending order.
        for w in e.values().windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn tr_step_never_exceeds_radius(
        a in sym_mat(7, 3.0),
        g in prop::collection::vec(-5.0..5.0f64, 7),
        delta in 0.01..10.0f64,
    ) {
        let sol = solve_tr_subproblem(&a, &g, delta);
        prop_assert!(vecops::norm2(&sol.step) <= delta * (1.0 + 1e-6));
        // The model value must not increase (minimizer of the model).
        prop_assert!(sol.predicted_reduction >= -1e-9);
    }

    #[test]
    fn tr_kkt_conditions(
        a in sym_mat(5, 2.0),
        g in prop::collection::vec(-3.0..3.0f64, 5),
        delta in 0.05..5.0f64,
    ) {
        prop_assume!(vecops::norm2(&g) > 1e-6);
        let sol = solve_tr_subproblem(&a, &g, delta);
        // (H + λI) p + g ≈ 0
        let mut r = a.matvec(&sol.step);
        for ((ri, pi), gi) in r.iter_mut().zip(&sol.step).zip(&g) {
            *ri += sol.lambda * pi + gi;
        }
        let scale = vecops::max_abs(&g).max(a.max_abs()).max(1.0);
        prop_assert!(vecops::max_abs(&r) < 1e-5 * scale, "KKT residual {:?}", r);
        prop_assert!(sol.lambda >= -1e-12);
    }

    #[test]
    fn nnls_is_nonnegative_and_optimal_on_support(
        entries in prop::collection::vec(0.1..2.0f64, 12),
        b in prop::collection::vec(-4.0..4.0f64, 4),
    ) {
        let a = Mat::from_rows(4, 3, &entries[..12]);
        let x = nnls(&a, &b, 2000);
        prop_assert!(x.iter().all(|&v| v >= 0.0));
        // KKT for NNLS: gradient ≥ 0 everywhere, == 0 on the support.
        let grad = {
            let r = vecops::sub(&a.matvec(&x), &b);
            a.t_matvec(&r)
        };
        for (j, (&xj, &gj)) in x.iter().zip(&grad).enumerate() {
            if xj > 1e-9 {
                prop_assert!(gj.abs() < 1e-5, "support coord {} grad {}", j, gj);
            } else {
                prop_assert!(gj > -1e-6, "inactive coord {} grad {}", j, gj);
            }
        }
    }
}
