//! Dense row-major matrix type.

use crate::LinalgError;

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// This is deliberately minimal: Celeste's matrices are small (the
/// per-source Hessian is 44×44), so the priority is a clear API and
/// predictable row-major memory traversal rather than blocked BLAS3.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Build from a flat row-major slice. Panics if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "from_rows: wrong data length");
        Mat {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// A diagonal matrix from the given entries.
    pub fn from_diag(d: &[f64]) -> Self {
        let mut m = Mat::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose (allocates).
    pub fn t(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dimensions differ");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        // ikj loop order: streams rhs rows, keeps the accumulator row hot.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += aik * r;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += vi * a;
            }
        }
        out
    }

    /// `self += alpha * rhs` (element-wise).
    pub fn add_scaled(&mut self, alpha: f64, rhs: &Mat) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Add `alpha` to the diagonal (Tikhonov shift).
    pub fn shift_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Whether `|a_ij − a_ji| ≤ tol · max(1, max|a|)` for all entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let scale = self.max_abs().max(1.0);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// Force exact symmetry by averaging with the transpose (in place).
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Quadratic form `vᵀ self v` (allocation-free: row-dot
    /// accumulation instead of materializing `self v`).
    pub fn quad_form(&self, v: &[f64]) -> f64 {
        assert_eq!(self.cols, v.len(), "quad_form: dimension mismatch");
        assert_eq!(self.rows, v.len(), "quad_form: matrix must be square");
        let mut total = 0.0;
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let mut s = 0.0;
            for (&a, &b) in self.row(i).iter().zip(v) {
                s += a * b;
            }
            total += vi * s;
        }
        total
    }

    /// Rank-1 update `self += alpha · u vᵀ`.
    pub fn rank1_update(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (i, &ui) in u.iter().enumerate() {
            let w = alpha * ui;
            if w == 0.0 {
                continue;
            }
            for (a, &vj) in self.row_mut(i).iter_mut().zip(v) {
                *a += w * vj;
            }
        }
    }

    /// Overwrite `self` with `rhs` (dimensions must match). Unlike
    /// `clone`, reuses the existing allocation — hot paths use this to
    /// refresh per-iteration copies without touching the heap.
    pub fn copy_from(&mut self, rhs: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "copy_from: shape mismatch"
        );
        self.data.copy_from_slice(&rhs.data);
    }

    /// Set every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Symmetric add: `self[(i,j)] += v` and, for `i ≠ j`,
    /// `self[(j,i)] += v`. The building block for assembling a
    /// symmetric matrix from one triangle's worth of work.
    #[inline]
    pub fn add_sym_lower(&mut self, i: usize, j: usize, v: f64) {
        self[(i, j)] += v;
        if i != j {
            self[(j, i)] += v;
        }
    }

    /// Mirrored scatter-add of a packed lower triangle.
    ///
    /// `packed` stores a symmetric `m × m` matrix's lower triangle
    /// row-major (`packed[i(i+1)/2 + j]` holds entry `(i, j)` for
    /// `j ≤ i`, so `len == m(m+1)/2`), and `map` sends compact index
    /// `k` to row/column `map[k]` of `self`. Both the `(i, j)` and
    /// `(j, i)` images receive the value, so the scatter of a full
    /// symmetric accumulation costs one pass over the triangle.
    pub fn scatter_sym_packed(&mut self, packed: &[f64], map: &[usize]) {
        let m = map.len();
        assert_eq!(
            packed.len(),
            m * (m + 1) / 2,
            "scatter_sym_packed: packed length"
        );
        let mut p = 0;
        for i in 0..m {
            let mi = map[i];
            for j in 0..=i {
                let v = packed[p];
                p += 1;
                if v != 0.0 {
                    self.add_sym_lower(mi, map[j], v);
                }
            }
        }
    }

    /// Gaussian elimination with partial pivoting: solve `self · x = b`.
    ///
    /// General-purpose fallback for non-symmetric systems (WCS inversion,
    /// small calibration fits). Prefer [`crate::Cholesky`] for SPD input.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            // Partial pivot.
            let (piv, pmax) = (k..n)
                .map(|i| (i, a[(i, k)].abs()))
                .fold((k, -1.0), |acc, it| if it.1 > acc.1 { it } else { acc });
            if pmax <= f64::EPSILON * a.max_abs().max(1.0) {
                return Err(LinalgError::Singular { pivot: k });
            }
            if piv != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(piv, j)];
                    a[(piv, j)] = tmp;
                }
                x.swap(k, piv);
            }
            let akk = a[(k, k)];
            for i in (k + 1)..n {
                let f = a[(i, k)] / akk;
                if f == 0.0 {
                    continue;
                }
                a[(i, k)] = 0.0;
                for j in (k + 1)..n {
                    a[(i, j)] -= f * a[(k, j)];
                }
                x[i] -= f * x[k];
            }
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= a[(i, j)] * x[j];
            }
            x[i] = s / a[(i, i)];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Debug for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>11.4e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Mat::identity(2);
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
        let i3 = Mat::identity(3);
        assert_eq!(a.matmul(&i3).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.t().t().as_slice(), a.as_slice());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let v = [1.0, -1.0, 2.0];
        let as_mat = a.matmul(&Mat::from_rows(3, 1, &v));
        assert_eq!(a.matvec(&v), as_mat.as_slice());
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Mat::from_fn(4, 3, |i, j| (i as f64) - 0.5 * (j as f64));
        let v = [0.5, 1.5, -2.0, 3.0];
        let direct = a.t().matvec(&v);
        assert_eq!(a.t_matvec(&v), direct);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Mat::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_detects_singular() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            a.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero top-left pivot: fails without partial pivoting.
        let a = Mat::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn quad_form_and_rank1() {
        let mut a = Mat::zeros(3, 3);
        let u = [1.0, 2.0, 3.0];
        a.rank1_update(2.0, &u, &u);
        // a = 2 u uᵀ, so vᵀ a v = 2 (uᵀv)².
        let v = [1.0, 0.0, -1.0];
        let uv: f64 = u.iter().zip(&v).map(|(a, b)| a * b).sum();
        assert!((a.quad_form(&v) - 2.0 * uv * uv).abs() < 1e-12);
    }

    #[test]
    fn copy_from_and_fill_zero_reuse_allocation() {
        let a = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut b = Mat::zeros(3, 3);
        b.copy_from(&a);
        assert_eq!(b.as_slice(), a.as_slice());
        b.fill_zero();
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn add_sym_lower_mirrors_off_diagonal() {
        let mut m = Mat::zeros(3, 3);
        m.add_sym_lower(2, 0, 1.5);
        m.add_sym_lower(1, 1, 2.0);
        assert_eq!(m[(2, 0)], 1.5);
        assert_eq!(m[(0, 2)], 1.5);
        assert_eq!(m[(1, 1)], 2.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn scatter_sym_packed_matches_dense_reference() {
        // Packed 3×3 lower triangle [a00, a10, a11, a20, a21, a22]
        // scattered through map [4, 1, 3] into a 6×6 matrix.
        let packed = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let map = [4usize, 1, 3];
        let mut out = Mat::zeros(6, 6);
        out.scatter_sym_packed(&packed, &map);
        let mut expect = Mat::zeros(6, 6);
        let full = [[1.0, 2.0, 4.0], [2.0, 3.0, 5.0], [4.0, 5.0, 6.0]];
        for i in 0..3 {
            for j in 0..3 {
                expect[(map[i], map[j])] += full[i][j];
            }
        }
        assert_eq!(out.as_slice(), expect.as_slice());
        assert!(out.is_symmetric(0.0));
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut a = Mat::from_fn(4, 4, |i, j| (3 * i + j) as f64);
        assert!(!a.is_symmetric(1e-12));
        a.symmetrize();
        assert!(a.is_symmetric(0.0));
    }
}
