//! Free-function vector kernels shared across the workspace.

/// Dot product. Panics in debug builds if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Maximum absolute entry (0 for empty input).
#[inline]
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Element-wise subtraction `a - b` into a new vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Mean of a slice (0 for empty input).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Unbiased sample variance (0 for fewer than two entries).
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Median by copy-and-sort; NaNs sort last. 0 for empty input.
pub fn median(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let mut v = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Less));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn stats_on_known_data() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-15);
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(median(&v), 4.5);
        assert_eq!(median(&[1.0, 5.0, 2.0]), 2.0);
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }
}
