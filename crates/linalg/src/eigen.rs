//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::Mat;

/// Sweep cap for the cyclic Jacobi iteration. Convergence is typically
/// < 12 sweeps at n = 44; the cap only matters for pathological input
/// (see [`jacobi_sweeps`]).
const MAX_SWEEPS: usize = 64;

/// Run cyclic Jacobi sweeps on `m` in place, accumulating rotations
/// into `v` (which must come in as the identity). Returns whether the
/// off-diagonal mass fell below `1e-14 · ‖A‖_F`.
///
/// Guards for near-degenerate input (tiny off-diagonals on clustered
/// eigenvalues, the trust-region hard case's 7×7 Hessians):
///
/// * rotations whose angle parameter is not finite (an off-diagonal
///   entry straddling the subnormal range against a large diagonal
///   gap) are skipped instead of poisoning the factor with NaNs;
/// * per-rotation skips are thresholded at `tol / n`, which bounds the
///   residual off-diagonal mass below `tol` even when every remaining
///   rotation is skipped, so the sweep loop cannot spin uselessly;
/// * the sweep cap is a hard stop: callers get the best-effort
///   diagonal plus a `false` convergence flag rather than a hang.
fn jacobi_sweeps(m: &mut Mat, v: &mut Mat) -> bool {
    let n = m.rows();
    let tol = 1e-14 * m.frob_norm().max(f64::MIN_POSITIVE);

    let off_norm = |m: &Mat| -> f64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        (2.0 * off).sqrt()
    };

    for _sweep in 0..MAX_SWEEPS {
        if off_norm(m) <= tol {
            return true;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                // Classic Jacobi rotation angle.
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                if !theta.is_finite() {
                    // |apq| subnormal against a huge diagonal gap: the
                    // rotation is numerically the identity; applying
                    // it would inject NaN through θ² overflow.
                    continue;
                }
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    off_norm(m) <= tol
}

/// Preallocated storage for repeated symmetric eigendecompositions of
/// same-sized matrices: the Newton trust-region inner loop runs one
/// Jacobi solve per iteration, and with this workspace (owned by the
/// optimizer's evaluation workspace via `TrWorkspace`) those solves
/// touch no heap at all after the first.
#[derive(Debug, Clone)]
pub struct EigenWorkspace {
    /// Working copy destroyed by the sweeps.
    m: Mat,
    /// Accumulated rotations (unsorted columns).
    v: Mat,
    /// Eigenvector columns permuted into ascending-eigenvalue order.
    vectors: Mat,
    /// Eigenvalues, ascending.
    values: Vec<f64>,
    /// Unsorted diagonal and its sort permutation.
    diag: Vec<f64>,
    idx: Vec<usize>,
    converged: bool,
}

impl EigenWorkspace {
    /// Allocate for `n × n` input.
    pub fn new(n: usize) -> Self {
        EigenWorkspace {
            m: Mat::zeros(n, n),
            v: Mat::zeros(n, n),
            vectors: Mat::zeros(n, n),
            values: vec![0.0; n],
            diag: vec![0.0; n],
            idx: vec![0; n],
            converged: false,
        }
    }

    /// Current problem dimension.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Reallocate if the dimension changed (no-op, and no heap
    /// traffic, when it did not).
    pub fn resize(&mut self, n: usize) {
        if self.dim() != n {
            *self = EigenWorkspace::new(n);
        }
    }

    /// Decompose `a` (square; almost-symmetric input is symmetrized)
    /// into the workspace buffers. Allocation-free when `a` matches
    /// the workspace dimension.
    pub fn compute(&mut self, a: &Mat) {
        assert_eq!(a.rows(), a.cols(), "EigenWorkspace: matrix must be square");
        let n = a.rows();
        self.resize(n);
        self.m.copy_from(a);
        self.m.symmetrize();
        self.v.fill_zero();
        for i in 0..n {
            self.v[(i, i)] = 1.0;
        }
        self.converged = jacobi_sweeps(&mut self.m, &mut self.v);

        // Sort ascending, permuting eigenvector columns. sort_unstable
        // keeps this allocation-free (the stable sort buffers).
        for i in 0..n {
            self.diag[i] = self.m[(i, i)];
            self.idx[i] = i;
        }
        let diag = &self.diag;
        self.idx
            .sort_unstable_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());
        for c in 0..n {
            let src = self.idx[c];
            self.values[c] = self.diag[src];
            for r in 0..n {
                self.vectors[(r, c)] = self.v[(r, src)];
            }
        }
    }

    /// Eigenvalues in ascending order (of the last [`Self::compute`]).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvector matrix; column `j` pairs with `values()[j]`.
    pub fn vectors(&self) -> &Mat {
        &self.vectors
    }

    /// Whether the last decomposition reached the off-diagonal
    /// tolerance within the sweep cap. `false` still leaves the best
    /// available approximate factorization in the buffers.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Write `Vᵀ x` into `out` (both length `dim`).
    pub fn to_eigenbasis_into(&self, x: &[f64], out: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n);
        assert_eq!(out.len(), n);
        for (j, o) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                s += self.vectors[(i, j)] * xi;
            }
            *o = s;
        }
    }

    /// Write `V y` into `out` (both length `dim`).
    pub fn from_eigenbasis_into(&self, y: &[f64], out: &mut [f64]) {
        let n = self.dim();
        assert_eq!(y.len(), n);
        assert_eq!(out.len(), n);
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.vectors.row(i);
            let mut s = 0.0;
            for (yi, vi) in y.iter().zip(row) {
                s += vi * yi;
            }
            *o = s;
        }
    }
}

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// The paper's trust-region Newton step computes "an eigen decomposition
/// … at each iteration" (§VI-B). At n = 44 the cyclic Jacobi method is
/// simple, unconditionally convergent for symmetric input, and accurate
/// to machine precision — there is no need for a LAPACK binding.
///
/// This owning form allocates per decomposition; the optimizer's inner
/// loop uses [`EigenWorkspace`] instead and reuses its storage.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    values: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `values[j]`.
    vectors: Mat,
    converged: bool,
}

impl SymEigen {
    /// Decompose `a`, which must be square; the strictly-upper triangle
    /// is trusted (call [`Mat::symmetrize`] first for almost-symmetric
    /// input). Runs Jacobi sweeps until off-diagonal mass is below
    /// `1e-14 · ‖A‖_F` or 64 sweeps, whichever comes first (convergence
    /// is typically < 12 sweeps at n = 44).
    pub fn new(a: &Mat) -> Self {
        let mut ws = EigenWorkspace::new(a.rows());
        ws.compute(a);
        SymEigen {
            values: ws.values,
            vectors: ws.vectors,
            converged: ws.converged,
        }
    }

    /// Eigenvalues in ascending order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvector matrix; column `j` pairs with `values()[j]`.
    pub fn vectors(&self) -> &Mat {
        &self.vectors
    }

    /// Whether the Jacobi sweeps reached tolerance (see
    /// [`EigenWorkspace::converged`]).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Smallest eigenvalue.
    pub fn min_value(&self) -> f64 {
        self.values[0]
    }

    /// Project `x` onto the eigenbasis: returns `Vᵀ x`.
    pub fn to_eigenbasis(&self, x: &[f64]) -> Vec<f64> {
        self.vectors.t_matvec(x)
    }

    /// Map eigenbasis coordinates back: returns `V y`.
    pub fn from_eigenbasis(&self, y: &[f64]) -> Vec<f64> {
        self.vectors.matvec(y)
    }

    /// Rebuild `V diag(f(λ)) Vᵀ` — used for the modified-Newton PSD
    /// projection (flip/floor negative curvature).
    pub fn rebuild_with(&self, f: impl Fn(f64) -> f64) -> Mat {
        let n = self.values.len();
        let mut out = Mat::zeros(n, n);
        for j in 0..n {
            let w = f(self.values[j]);
            if w == 0.0 {
                continue;
            }
            let col: Vec<f64> = (0..n).map(|i| self.vectors[(i, j)]).collect();
            out.rank1_update(w, &col, &col);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_test_matrix(n: usize) -> Mat {
        let b = Mat::from_fn(n, n, |i, j| {
            (((i * 13 + j * 29 + 3) % 17) as f64 - 8.0) / 8.0
        });
        let mut a = b.clone();
        a.add_scaled(1.0, &b.t());
        a
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Mat::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymEigen::new(&a);
        assert!((e.values()[0] - -1.0).abs() < 1e-12);
        assert!((e.values()[1] - 2.0).abs() < 1e-12);
        assert!((e.values()[2] - 3.0).abs() < 1e-12);
        assert!(e.converged());
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Mat::from_rows(2, 2, &[2.0, 1.0, 1.0, 2.0]);
        let e = SymEigen::new(&a);
        assert!((e.values()[0] - 1.0).abs() < 1e-12);
        assert!((e.values()[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = sym_test_matrix(20);
        let e = SymEigen::new(&a);
        // V diag(λ) Vᵀ == A
        let recon = e.rebuild_with(|x| x);
        let mut diff = recon;
        diff.add_scaled(-1.0, &a);
        assert!(
            diff.max_abs() < 1e-10 * a.max_abs().max(1.0),
            "residual {diff:?}"
        );
        // VᵀV == I
        let vtv = e.vectors().t().matmul(e.vectors());
        let mut ortho = vtv;
        ortho.add_scaled(-1.0, &Mat::identity(20));
        assert!(ortho.max_abs() < 1e-12);
    }

    #[test]
    fn eigenbasis_roundtrip() {
        let a = sym_test_matrix(9);
        let e = SymEigen::new(&a);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let back = e.from_eigenbasis(&e.to_eigenbasis(&x));
        for (p, q) in back.iter().zip(&x) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_preserved() {
        let a = sym_test_matrix(15);
        let e = SymEigen::new(&a);
        let tr_a: f64 = (0..15).map(|i| a[(i, i)]).sum();
        let tr_l: f64 = e.values().iter().sum();
        assert!((tr_a - tr_l).abs() < 1e-10);
    }

    #[test]
    fn psd_projection_floors_negatives() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigen 3, -1
        let e = SymEigen::new(&a);
        let fixed = e.rebuild_with(|l| l.max(0.5));
        let e2 = SymEigen::new(&fixed);
        assert!(e2.min_value() >= 0.5 - 1e-12);
    }

    #[test]
    fn workspace_matches_owning_form_and_reuses() {
        let a = sym_test_matrix(12);
        let e = SymEigen::new(&a);
        let mut ws = EigenWorkspace::new(12);
        // Repeated computes must agree with the owning form exactly.
        for _ in 0..3 {
            ws.compute(&a);
            assert_eq!(ws.values(), e.values());
            assert_eq!(ws.vectors().as_slice(), e.vectors().as_slice());
        }
        // Round-trip through the _into projections.
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut y = vec![0.0; 12];
        let mut back = vec![0.0; 12];
        ws.to_eigenbasis_into(&x, &mut y);
        ws.from_eigenbasis_into(&y, &mut back);
        for (p, q) in back.iter().zip(&x) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn near_degenerate_clustered_spectrum_converges() {
        // A 7×7 Hessian-like matrix with a tightly clustered bottom
        // eigenspace and off-diagonals down at the rounding floor —
        // the trust-region hard case's input. The sweeps must neither
        // hang nor emit NaNs, and the factorization must still
        // reconstruct to machine precision.
        let n = 7;
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            // Two near-identical clusters plus separated top values.
            a[(i, i)] = match i {
                0 | 1 => -2.0 + 1e-15 * i as f64,
                2 | 3 => -2.0 + 3e-15,
                _ => 1.0 + i as f64,
            };
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let v = 1e-16 * ((i * 5 + j * 3) % 7) as f64;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = SymEigen::new(&a);
        assert!(e.converged(), "clustered spectrum must converge");
        assert!(e.values().iter().all(|v| v.is_finite()));
        let recon = e.rebuild_with(|x| x);
        let mut diff = recon;
        diff.add_scaled(-1.0, &a);
        assert!(diff.max_abs() < 1e-12 * a.max_abs());
        // The bottom eigenspace is the -2 cluster, multiplicity 4.
        for j in 0..4 {
            assert!((e.values()[j] - -2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn subnormal_offdiagonals_do_not_poison_factor() {
        // Entries that would overflow θ = (aqq−app)/(2 apq) if the
        // skip guard mishandled them.
        let mut a = Mat::from_diag(&[1e200, -1e200, 3.0]);
        a[(0, 1)] = 1e-300;
        a[(1, 0)] = 1e-300;
        a[(0, 2)] = 1.0;
        a[(2, 0)] = 1.0;
        let e = SymEigen::new(&a);
        assert!(e.values().iter().all(|v| v.is_finite()));
    }
}
