//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::Mat;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// The paper's trust-region Newton step computes "an eigen decomposition
/// … at each iteration" (§VI-B). At n = 44 the cyclic Jacobi method is
/// simple, unconditionally convergent for symmetric input, and accurate
/// to machine precision — there is no need for a LAPACK binding.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    values: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `values[j]`.
    vectors: Mat,
}

impl SymEigen {
    /// Decompose `a`, which must be square; the strictly-upper triangle
    /// is trusted (call [`Mat::symmetrize`] first for almost-symmetric
    /// input). Runs Jacobi sweeps until off-diagonal mass is below
    /// `1e-14 · ‖A‖_F` or 64 sweeps, whichever comes first (convergence
    /// is typically < 12 sweeps at n = 44).
    pub fn new(a: &Mat) -> Self {
        assert_eq!(a.rows(), a.cols(), "SymEigen: matrix must be square");
        let n = a.rows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Mat::identity(n);
        let tol = 1e-14 * m.frob_norm().max(f64::MIN_POSITIVE);

        for _sweep in 0..64 {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)] * m[(i, j)];
                }
            }
            if (2.0 * off).sqrt() <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    // Classic Jacobi rotation angle.
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply rotation to rows/cols p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Extract and sort ascending, permuting eigenvector columns.
        let mut idx: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        idx.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());
        let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
        let vectors = Mat::from_fn(n, n, |r, c| v[(r, idx[c])]);
        SymEigen { values, vectors }
    }

    /// Eigenvalues in ascending order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvector matrix; column `j` pairs with `values()[j]`.
    pub fn vectors(&self) -> &Mat {
        &self.vectors
    }

    /// Smallest eigenvalue.
    pub fn min_value(&self) -> f64 {
        self.values[0]
    }

    /// Project `x` onto the eigenbasis: returns `Vᵀ x`.
    pub fn to_eigenbasis(&self, x: &[f64]) -> Vec<f64> {
        self.vectors.t_matvec(x)
    }

    /// Map eigenbasis coordinates back: returns `V y`.
    pub fn from_eigenbasis(&self, y: &[f64]) -> Vec<f64> {
        self.vectors.matvec(y)
    }

    /// Rebuild `V diag(f(λ)) Vᵀ` — used for the modified-Newton PSD
    /// projection (flip/floor negative curvature).
    pub fn rebuild_with(&self, f: impl Fn(f64) -> f64) -> Mat {
        let n = self.values.len();
        let mut out = Mat::zeros(n, n);
        for j in 0..n {
            let w = f(self.values[j]);
            if w == 0.0 {
                continue;
            }
            let col: Vec<f64> = (0..n).map(|i| self.vectors[(i, j)]).collect();
            out.rank1_update(w, &col, &col);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_test_matrix(n: usize) -> Mat {
        let b = Mat::from_fn(n, n, |i, j| {
            (((i * 13 + j * 29 + 3) % 17) as f64 - 8.0) / 8.0
        });
        let mut a = b.clone();
        a.add_scaled(1.0, &b.t());
        a
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Mat::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymEigen::new(&a);
        assert!((e.values()[0] - -1.0).abs() < 1e-12);
        assert!((e.values()[1] - 2.0).abs() < 1e-12);
        assert!((e.values()[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Mat::from_rows(2, 2, &[2.0, 1.0, 1.0, 2.0]);
        let e = SymEigen::new(&a);
        assert!((e.values()[0] - 1.0).abs() < 1e-12);
        assert!((e.values()[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = sym_test_matrix(20);
        let e = SymEigen::new(&a);
        // V diag(λ) Vᵀ == A
        let recon = e.rebuild_with(|x| x);
        let mut diff = recon;
        diff.add_scaled(-1.0, &a);
        assert!(
            diff.max_abs() < 1e-10 * a.max_abs().max(1.0),
            "residual {diff:?}"
        );
        // VᵀV == I
        let vtv = e.vectors().t().matmul(e.vectors());
        let mut ortho = vtv;
        ortho.add_scaled(-1.0, &Mat::identity(20));
        assert!(ortho.max_abs() < 1e-12);
    }

    #[test]
    fn eigenbasis_roundtrip() {
        let a = sym_test_matrix(9);
        let e = SymEigen::new(&a);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let back = e.from_eigenbasis(&e.to_eigenbasis(&x));
        for (p, q) in back.iter().zip(&x) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_preserved() {
        let a = sym_test_matrix(15);
        let e = SymEigen::new(&a);
        let tr_a: f64 = (0..15).map(|i| a[(i, i)]).sum();
        let tr_l: f64 = e.values().iter().sum();
        assert!((tr_a - tr_l).abs() < 1e-10);
    }

    #[test]
    fn psd_projection_floors_negatives() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigen 3, -1
        let e = SymEigen::new(&a);
        let fixed = e.rebuild_with(|l| l.max(0.5));
        let e2 = SymEigen::new(&fixed);
        assert!(e2.min_value() >= 0.5 - 1e-12);
    }
}
