#![allow(clippy::needless_range_loop)] // lockstep-indexed numeric kernels
//! Small dense linear algebra for Celeste.
//!
//! The Celeste optimizer (paper §IV-D) runs Newton's method with a trust
//! region on 44-parameter blocks, which requires, per iteration, one
//! symmetric eigendecomposition and several Cholesky factorizations of
//! dense 44×44 matrices. This crate provides exactly those kernels, built
//! from scratch (the paper used MKL/Julia stdlib; see DESIGN.md S3):
//!
//! * [`Mat`] — a row-major dense matrix with the handful of BLAS-like
//!   operations the rest of the workspace needs,
//! * [`Cholesky`] — SPD factorization, solves, log-determinant, inverse
//!   (refactor in place via [`Cholesky::factor_into`]),
//! * [`Ldlt`] — unpivoted LDLᵀ for symmetric quasi-definite systems,
//! * [`SymEigen`] / [`EigenWorkspace`] — cyclic Jacobi eigensolver
//!   (always converges for symmetric input, no LAPACK dependency);
//!   the workspace form reuses all storage across decompositions,
//! * [`solve_tr_subproblem`] / [`solve_tr_subproblem_with`] — the
//!   Moré–Sorensen-style trust-region subproblem solver used by the
//!   nonconvex Newton optimizer; the `_with` form solves into a
//!   caller-owned [`TrWorkspace`] with zero heap allocation,
//! * [`lstsq`] / [`nnls`] — (nonnegative) linear least squares used for
//!   galaxy-profile mixture fitting and PSF calibration,
//! * [`fused`] — the fused-multiply-add strategy trait and the
//!   process-global `avx2,fma` runtime dispatch every hand-vectorized
//!   kernel in the workspace routes through (plus the
//!   `CELESTE_FORCE_SCALAR` escape hatch).
//!
//! Matrices here are small (≤ a few hundred rows); all algorithms are
//! O(n³) dense and optimized for clarity plus cache-friendly row-major
//! traversal, not for large-scale BLAS3 throughput.

mod chol;
mod eigen;
pub mod fused;
mod lstsq;
mod mat;
mod tr;
pub mod vecops;

pub use chol::{Cholesky, Ldlt};
pub use eigen::{EigenWorkspace, SymEigen};
pub use lstsq::{lstsq, lstsq_ridge, nnls};
pub use mat::Mat;
pub use tr::{solve_tr_subproblem, solve_tr_subproblem_with, TrInfo, TrSolution, TrWorkspace};

/// Errors produced by factorizations when their input assumptions fail.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix is not positive definite (Cholesky pivot ≤ 0 at `pivot`).
    NotPositiveDefinite { pivot: usize },
    /// Matrix is numerically singular.
    Singular { pivot: usize },
    /// Dimensions of the operands do not match.
    DimensionMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => write!(f, "matrix singular (pivot {pivot})"),
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
