//! Cholesky and LDLᵀ factorizations.

use crate::{LinalgError, Mat};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// The Newton trust-region inner loop (paper §IV-D / §VI-B) performs
/// "several Cholesky factorizations at each iteration" — this is that
/// kernel. Factorization is in-place on a copy, O(n³/3).
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factor `a`. Returns [`LinalgError::NotPositiveDefinite`] when a
    /// pivot is not strictly positive (used by the trust-region solver to
    /// bracket the ridge parameter).
    pub fn new(a: &Mat) -> Result<Self, LinalgError> {
        let mut ch = Cholesky::zeros(a.rows());
        ch.factor_into(a)?;
        Ok(ch)
    }

    /// Preallocated storage for repeated factorizations of `n × n`
    /// matrices (fill with [`Cholesky::factor_into`]).
    pub fn zeros(n: usize) -> Self {
        Cholesky {
            l: Mat::zeros(n, n),
        }
    }

    /// Refactor `a` into this instance's storage: no heap allocation
    /// when the dimensions already match. On error the factor contents
    /// are unspecified but the storage remains reusable.
    pub fn factor_into(&mut self, a: &Mat) -> Result<(), LinalgError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky: matrix must be square");
        let n = a.rows();
        if self.l.rows() != n {
            self.l = Mat::zeros(n, n);
        } else {
            self.l.fill_zero();
        }
        let l = &mut self.l;
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(())
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solve `A x = b` writing the result back into `b`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "Cholesky::solve: dimension mismatch");
        // Forward substitution L y = b.
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = b[i];
            for k in 0..i {
                s -= row[k] * b[k];
            }
            b[i] = s / row[i];
        }
        // Backward substitution Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * b[k];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// `log det A = 2 Σ log L_ii` — needed by Gaussian KL terms.
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Dense inverse (column-by-column solve). O(n³); fine at n ≤ 44.
    pub fn inverse(&self) -> Mat {
        let n = self.l.rows();
        let mut inv = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            self.solve_in_place(&mut e);
            for i in 0..n {
                inv[(i, j)] = e[i];
            }
        }
        inv
    }
}

/// Unpivoted LDLᵀ factorization of a symmetric matrix.
///
/// Tolerates indefinite input as long as no pivot underflows; used for
/// symmetric quasi-definite calibration systems where Cholesky would
/// reject a slightly negative eigenvalue.
#[derive(Debug, Clone)]
pub struct Ldlt {
    /// Unit lower triangle (diagonal implicitly 1).
    l: Mat,
    d: Vec<f64>,
}

impl Ldlt {
    /// Factor `a`. Fails with [`LinalgError::Singular`] if a pivot's
    /// magnitude falls below `1e-14 · max|a|`.
    pub fn new(a: &Mat) -> Result<Self, LinalgError> {
        assert_eq!(a.rows(), a.cols(), "Ldlt: matrix must be square");
        let n = a.rows();
        let tiny = 1e-14 * a.max_abs().max(1.0);
        let mut l = Mat::identity(n);
        let mut d = vec![0.0; n];
        for j in 0..n {
            let mut dj = a[(j, j)];
            for k in 0..j {
                dj -= l[(j, k)] * l[(j, k)] * d[k];
            }
            if dj.abs() < tiny || !dj.is_finite() {
                return Err(LinalgError::Singular { pivot: j });
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)] * d[k];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Ldlt { l, d })
    }

    /// The diagonal of `D`; its signs are the matrix inertia.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Number of negative pivots (count of negative eigenvalues, by
    /// Sylvester's law of inertia).
    pub fn negative_pivots(&self) -> usize {
        self.d.iter().filter(|&&x| x < 0.0).count()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "Ldlt::solve: dimension mismatch");
        let mut x = b.to_vec();
        for i in 0..n {
            let mut s = x[i];
            for k in 0..i {
                s -= self.l[(i, k)] * x[k];
            }
            x[i] = s;
        }
        for i in 0..n {
            x[i] /= self.d[i];
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_test_matrix(n: usize) -> Mat {
        // A = B Bᵀ + n·I with B full of deterministic pseudo-random values.
        let b = Mat::from_fn(n, n, |i, j| {
            (((i * 31 + j * 17 + 7) % 13) as f64 - 6.0) / 6.0
        });
        let mut a = b.matmul(&b.t());
        a.shift_diag(n as f64);
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd_test_matrix(10);
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().t());
        let mut diff = recon.clone();
        diff.add_scaled(-1.0, &a);
        assert!(diff.max_abs() < 1e-10 * a.max_abs());
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = spd_test_matrix(17);
        let x_true: Vec<f64> = (0..17).map(|i| (i as f64 - 8.0) / 3.0).collect();
        let b = a.matvec(&x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_log_det_matches_known() {
        let a = Mat::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - (24.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_inverse_is_inverse() {
        let a = spd_test_matrix(8);
        let inv = Cholesky::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        let mut diff = prod;
        diff.add_scaled(-1.0, &Mat::identity(8));
        assert!(diff.max_abs() < 1e-9);
    }

    #[test]
    fn ldlt_handles_indefinite_and_counts_inertia() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigen 3, -1
        let f = Ldlt::new(&a).unwrap();
        assert_eq!(f.negative_pivots(), 1);
        let x = f.solve(&[1.0, 0.0]);
        let b = a.matvec(&x);
        assert!((b[0] - 1.0).abs() < 1e-12 && b[1].abs() < 1e-12);
    }

    #[test]
    fn ldlt_matches_cholesky_on_spd() {
        let a = spd_test_matrix(9);
        let b: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let x1 = Cholesky::new(&a).unwrap().solve(&b);
        let x2 = Ldlt::new(&a).unwrap().solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-9);
        }
    }
}
