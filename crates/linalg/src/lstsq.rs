//! Linear least squares and nonnegative least squares.

use crate::{Cholesky, Mat};

/// Solve `min_x ‖A x − b‖²` via the normal equations with a tiny
/// Tikhonov jitter for rank-deficiency robustness.
///
/// Used for PSF calibration fits and WCS plate solutions where `A` has
/// at most a few dozen columns.
pub fn lstsq(a: &Mat, b: &[f64]) -> Vec<f64> {
    lstsq_ridge(a, b, 0.0)
}

/// Ridge-regularized least squares `min_x ‖Ax − b‖² + ridge·‖x‖²`.
pub fn lstsq_ridge(a: &Mat, b: &[f64], ridge: f64) -> Vec<f64> {
    assert_eq!(a.rows(), b.len(), "lstsq: row/rhs mismatch");
    let ata = a.t().matmul(a);
    let atb = a.t_matvec(b);
    let mut m = ata;
    // Scale-aware jitter keeps the Cholesky factorization alive for
    // nearly-collinear designs without visibly biasing the solution.
    let jitter = ridge + 1e-12 * m.max_abs().max(1.0);
    m.shift_diag(jitter);
    match Cholesky::new(&m) {
        Ok(ch) => ch.solve(&atb),
        Err(_) => {
            // Heavier jitter as a last resort.
            m.shift_diag(1e-6 * m.max_abs().max(1.0));
            Cholesky::new(&m)
                .expect("jittered normal equations must be SPD")
                .solve(&atb)
        }
    }
}

/// Nonnegative least squares `min_{x ≥ 0} ‖A x − b‖²` by cyclic
/// coordinate descent on the normal equations.
///
/// Used to fit the Gaussian-mixture approximations of the exponential
/// and de Vaucouleurs galaxy profiles (DESIGN.md S5), where amplitudes
/// must be nonnegative. Coordinate descent on NNLS converges globally
/// for this convex problem; `max_iters` bounds work.
pub fn nnls(a: &Mat, b: &[f64], max_iters: usize) -> Vec<f64> {
    assert_eq!(a.rows(), b.len(), "nnls: row/rhs mismatch");
    let n = a.cols();
    let ata = a.t().matmul(a);
    let atb = a.t_matvec(b);
    let mut x = vec![0.0; n];
    for _ in 0..max_iters {
        let mut max_delta = 0.0_f64;
        for j in 0..n {
            let ajj = ata[(j, j)];
            if ajj <= 0.0 {
                continue;
            }
            // Gradient coordinate: (Aᵀ A x − Aᵀ b)_j
            let mut gj = -atb[j];
            for k in 0..n {
                gj += ata[(j, k)] * x[k];
            }
            let new = (x[j] - gj / ajj).max(0.0);
            max_delta = max_delta.max((new - x[j]).abs());
            x[j] = new;
        }
        if max_delta < 1e-14 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstsq_exact_on_square_system() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let x_true = [0.5, -1.5];
        let b = a.matvec(&x_true);
        let x = lstsq(&a, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_overdetermined_projects() {
        // Fit a line y = 2x + 1 through noise-free samples.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Mat::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let coef = lstsq(&a, &b);
        assert!((coef[0] - 1.0).abs() < 1e-8);
        assert!((coef[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn lstsq_survives_collinear_design() {
        // Two identical columns: rank deficient; must not panic.
        let a = Mat::from_fn(6, 2, |i, _| i as f64 + 1.0);
        let b: Vec<f64> = (0..6).map(|i| 3.0 * (i as f64 + 1.0)).collect();
        let coef = lstsq(&a, &b);
        // The sum of coefficients must reproduce the slope.
        assert!((coef[0] + coef[1] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn nnls_matches_lstsq_when_unconstrained_nonneg() {
        let a = Mat::from_rows(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let b = [1.0, 2.0, 3.0];
        let free = lstsq(&a, &b);
        assert!(
            free.iter().all(|&v| v >= 0.0),
            "test premise: solution nonneg"
        );
        let con = nnls(&a, &b, 1000);
        for (p, q) in free.iter().zip(&con) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn nnls_clamps_negative_coordinates() {
        // Unconstrained solution has a negative coordinate; NNLS must
        // return 0 there and stay optimal on the active set.
        let a = Mat::from_rows(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        let b = [0.0, 1.0]; // unconstrained: x = (-1, 1)
        let x = nnls(&a, &b, 1000);
        assert!(x[0].abs() < 1e-10);
        assert!((x[1] - 0.5).abs() < 1e-8); // argmin over x1≥0 of x1² + (x1-1)²
    }

    #[test]
    fn nnls_zero_rhs_gives_zero() {
        let a = Mat::identity(4);
        let x = nnls(&a, &[0.0; 4], 10);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
