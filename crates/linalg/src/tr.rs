//! Trust-region subproblem solver (Moré–Sorensen on the eigenbasis).

use crate::{Mat, SymEigen};

/// Result of solving `min_p  gᵀp + ½ pᵀHp  s.t. ‖p‖ ≤ Δ`.
#[derive(Debug, Clone)]
pub struct TrSolution {
    /// The minimizing step.
    pub step: Vec<f64>,
    /// Model reduction `−(gᵀp + ½pᵀHp)` (≥ 0 up to rounding).
    pub predicted_reduction: f64,
    /// Whether the step hit the trust-region boundary.
    pub on_boundary: bool,
    /// Ridge multiplier λ with `(H + λI) p = −g`, λ ≥ 0.
    pub lambda: f64,
}

/// Solve the trust-region subproblem exactly via eigendecomposition.
///
/// This mirrors the paper's inner optimizer (§IV-D): Newton steps on a
/// nonconvex objective are safeguarded by a trust region, and each step
/// costs one eigendecomposition (here: Jacobi, [`SymEigen`]) plus cheap
/// secular-equation iterations. In the eigenbasis the stationarity
/// condition `(H + λI) p = −g` becomes diagonal, so we root-find the
/// scalar secular equation `‖p(λ)‖ = Δ` with a safeguarded Newton
/// iteration, handling the hard case (gradient orthogonal to the bottom
/// eigenspace) explicitly.
pub fn solve_tr_subproblem(h: &Mat, g: &[f64], delta: f64) -> TrSolution {
    assert!(delta > 0.0, "trust radius must be positive");
    assert_eq!(h.rows(), g.len(), "gradient/Hessian dimension mismatch");
    let n = g.len();
    let eig = SymEigen::new(h);
    let lam = eig.values();
    let gbar = eig.to_eigenbasis(g);
    let lam_min = lam[0];

    // Unconstrained Newton step is valid if H ≻ 0 and the step fits.
    if lam_min > 0.0 {
        let p_newton: Vec<f64> = gbar.iter().zip(lam).map(|(&gi, &li)| -gi / li).collect();
        let norm = crate::vecops::norm2(&p_newton);
        if norm <= delta {
            let step = eig.from_eigenbasis(&p_newton);
            let pred = predicted_reduction(h, g, &step);
            return TrSolution {
                step,
                predicted_reduction: pred,
                on_boundary: false,
                lambda: 0.0,
            };
        }
    }

    // Boundary solution: find λ > max(0, −λ_min) with ‖p(λ)‖ = Δ where
    // p_i(λ) = −ḡ_i / (λ_i + λ).
    let lam_floor = (-lam_min).max(0.0);
    let norm_at = |l: f64| -> f64 {
        gbar.iter()
            .zip(lam)
            .map(|(&gi, &li)| {
                let d = li + l;
                (gi / d) * (gi / d)
            })
            .sum::<f64>()
            .sqrt()
    };

    // Hard case: ḡ has (numerically) no component on the bottom
    // eigenspace, so even λ → λ_floor⁺ cannot reach the boundary. Take
    // the limiting interior solution plus a bottom-eigenvector component
    // sized to land exactly on the boundary.
    let g_scale = crate::vecops::max_abs(&gbar).max(1.0);
    let bottom: Vec<usize> = (0..n)
        .filter(|&i| (lam[i] - lam_min).abs() <= 1e-12 * lam_min.abs().max(1.0))
        .collect();
    let hard_case = lam_min <= 0.0
        && bottom.iter().all(|&i| gbar[i].abs() <= 1e-12 * g_scale)
        && norm_at(lam_floor + 1e-12 * lam_floor.abs().max(1.0)) < delta;
    if hard_case {
        let l = lam_floor;
        let mut p: Vec<f64> = (0..n)
            .map(|i| {
                let d = lam[i] + l;
                if d.abs() <= 1e-12 {
                    0.0
                } else {
                    -gbar[i] / d
                }
            })
            .collect();
        let pnorm = crate::vecops::norm2(&p);
        let tau = (delta * delta - pnorm * pnorm).max(0.0).sqrt();
        p[bottom[0]] += tau;
        let step = eig.from_eigenbasis(&p);
        let pred = predicted_reduction(h, g, &step);
        return TrSolution {
            step,
            predicted_reduction: pred,
            on_boundary: true,
            lambda: l,
        };
    }

    // Safeguarded Newton on φ(λ) = 1/‖p(λ)‖ − 1/Δ (convex in λ, the
    // standard Moré–Sorensen reformulation with superlinear convergence).
    let mut lo = lam_floor;
    let mut hi = lam_floor.max(1.0);
    while norm_at(hi) > delta {
        hi = 2.0 * hi + 1.0;
        if hi > 1e18 {
            break;
        }
    }
    let mut l = 0.5 * (lo.max(lam_floor + 1e-12) + hi);
    for _ in 0..100 {
        let nrm = norm_at(l);
        let phi = 1.0 / nrm - 1.0 / delta;
        if phi.abs() < 1e-12 / delta {
            break;
        }
        if nrm > delta {
            lo = lo.max(l);
        } else {
            hi = hi.min(l);
        }
        // φ'(λ) = (Σ ḡ²/(λ_i+λ)³) / ‖p‖³
        let dsum: f64 = gbar
            .iter()
            .zip(lam)
            .map(|(&gi, &li)| {
                let d = li + l;
                gi * gi / (d * d * d)
            })
            .sum();
        let dphi = dsum / (nrm * nrm * nrm);
        let mut l_new = l - phi / dphi;
        if !(l_new > lo && l_new < hi && l_new.is_finite()) {
            l_new = 0.5 * (lo + hi); // bisection fallback keeps the bracket
        }
        if (l_new - l).abs() <= 1e-15 * l.abs().max(1.0) {
            l = l_new;
            break;
        }
        l = l_new;
    }

    let p: Vec<f64> = gbar
        .iter()
        .zip(lam)
        .map(|(&gi, &li)| {
            let d = li + l;
            if d.abs() <= 1e-300 {
                0.0
            } else {
                -gi / d
            }
        })
        .collect();
    let step = eig.from_eigenbasis(&p);
    let pred = predicted_reduction(h, g, &step);
    TrSolution {
        step,
        predicted_reduction: pred,
        on_boundary: true,
        lambda: l,
    }
}

fn predicted_reduction(h: &Mat, g: &[f64], p: &[f64]) -> f64 {
    -(crate::vecops::dot(g, p) + 0.5 * h.quad_form(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::norm2;

    #[test]
    fn interior_step_is_newton_step() {
        let h = Mat::from_diag(&[2.0, 4.0]);
        let g = [0.2, -0.4];
        let sol = solve_tr_subproblem(&h, &g, 10.0);
        assert!(!sol.on_boundary);
        assert!((sol.step[0] - -0.1).abs() < 1e-12);
        assert!((sol.step[1] - 0.1).abs() < 1e-12);
        assert_eq!(sol.lambda, 0.0);
    }

    #[test]
    fn boundary_step_has_radius_delta() {
        let h = Mat::from_diag(&[2.0, 4.0]);
        let g = [10.0, -10.0];
        let delta = 0.5;
        let sol = solve_tr_subproblem(&h, &g, delta);
        assert!(sol.on_boundary);
        assert!((norm2(&sol.step) - delta).abs() < 1e-8);
        // KKT: (H + λI) p = −g with λ ≥ 0.
        let mut hp = h.matvec(&sol.step);
        for (hpi, pi) in hp.iter_mut().zip(&sol.step) {
            *hpi += sol.lambda * pi;
        }
        for (hpi, gi) in hp.iter().zip(&g) {
            assert!((hpi + gi).abs() < 1e-6, "KKT residual too large");
        }
        assert!(sol.lambda >= 0.0);
    }

    #[test]
    fn indefinite_hessian_still_descends() {
        // Saddle: H has a negative eigenvalue; TR step must still reduce
        // the quadratic model.
        let h = Mat::from_rows(2, 2, &[1.0, 0.0, 0.0, -2.0]);
        let g = [0.5, 0.3];
        let sol = solve_tr_subproblem(&h, &g, 1.0);
        assert!(sol.on_boundary);
        assert!(sol.predicted_reduction > 0.0);
        assert!((norm2(&sol.step) - 1.0).abs() < 1e-8);
        assert!(sol.lambda >= 2.0 - 1e-8, "λ must dominate −λ_min");
    }

    #[test]
    fn hard_case_reaches_boundary() {
        // Gradient orthogonal to the negative-curvature direction.
        let h = Mat::from_diag(&[-1.0, 3.0]);
        let g = [0.0, 0.3];
        let sol = solve_tr_subproblem(&h, &g, 2.0);
        assert!(sol.on_boundary);
        assert!((norm2(&sol.step) - 2.0).abs() < 1e-8);
        assert!(sol.predicted_reduction > 0.0);
    }

    #[test]
    fn zero_gradient_negative_curvature_moves() {
        // At an exact saddle with g = 0, the optimizer must still escape
        // along negative curvature (hard case with pure eigen-step).
        let h = Mat::from_diag(&[-2.0, 1.0]);
        let g = [0.0, 0.0];
        let sol = solve_tr_subproblem(&h, &g, 1.0);
        assert!((norm2(&sol.step) - 1.0).abs() < 1e-8);
        assert!(sol.predicted_reduction > 0.0);
        // Moves along the first (negative) eigendirection.
        assert!(sol.step[0].abs() > 0.9);
    }

    #[test]
    fn reduction_matches_direct_evaluation() {
        let h = Mat::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 0.5, 0.0, 0.5, 5.0]);
        let g = [1.0, -2.0, 0.5];
        let sol = solve_tr_subproblem(&h, &g, 0.3);
        let direct = -(crate::vecops::dot(&g, &sol.step) + 0.5 * h.quad_form(&sol.step));
        assert!((sol.predicted_reduction - direct).abs() < 1e-12);
    }
}
