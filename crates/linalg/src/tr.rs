//! Trust-region subproblem solver (Moré–Sorensen on the eigenbasis).

use crate::{EigenWorkspace, Mat};

/// Result of solving `min_p  gᵀp + ½ pᵀHp  s.t. ‖p‖ ≤ Δ`, owning form.
#[derive(Debug, Clone)]
pub struct TrSolution {
    /// The minimizing step.
    pub step: Vec<f64>,
    /// Model reduction `−(gᵀp + ½pᵀHp)` (≥ 0 up to rounding).
    pub predicted_reduction: f64,
    /// Whether the step hit the trust-region boundary.
    pub on_boundary: bool,
    /// Ridge multiplier λ with `(H + λI) p = −g`, λ ≥ 0.
    pub lambda: f64,
}

/// Scalar outcome of a workspace-backed solve; the step itself stays
/// in [`TrWorkspace::step`].
#[derive(Debug, Clone, Copy)]
pub struct TrInfo {
    /// Model reduction `−(gᵀp + ½pᵀHp)` (≥ 0 up to rounding).
    pub predicted_reduction: f64,
    /// Whether the step hit the trust-region boundary.
    pub on_boundary: bool,
    /// Ridge multiplier λ with `(H + λI) p = −g`, λ ≥ 0.
    pub lambda: f64,
}

/// Preallocated storage for repeated trust-region solves: the Jacobi
/// eigen workspace plus the eigenbasis gradient, trial-step scratch,
/// and the output step. Owned by the Newton optimizer's evaluation
/// workspace, so an entire `maximize_with` call — every iteration and
/// every trust-region trial — touches no heap after the first solve.
#[derive(Debug, Clone)]
pub struct TrWorkspace {
    eig: EigenWorkspace,
    /// Gradient in the eigenbasis (`Vᵀ g`).
    gbar: Vec<f64>,
    /// Step in the eigenbasis.
    p: Vec<f64>,
    /// The solution step in the original basis.
    step: Vec<f64>,
}

impl TrWorkspace {
    /// Allocate for `n`-dimensional problems.
    pub fn new(n: usize) -> Self {
        TrWorkspace {
            eig: EigenWorkspace::new(n),
            gbar: vec![0.0; n],
            p: vec![0.0; n],
            step: vec![0.0; n],
        }
    }

    /// Current problem dimension.
    pub fn dim(&self) -> usize {
        self.step.len()
    }

    /// Reallocate if the dimension changed (no-op otherwise).
    pub fn resize(&mut self, n: usize) {
        if self.dim() != n {
            *self = TrWorkspace::new(n);
        }
    }

    /// The step produced by the last [`solve_tr_subproblem_with`].
    pub fn step(&self) -> &[f64] {
        &self.step
    }
}

/// Solve the trust-region subproblem exactly via eigendecomposition,
/// allocating a fresh workspace. Hot paths hold a [`TrWorkspace`] and
/// call [`solve_tr_subproblem_with`] instead.
pub fn solve_tr_subproblem(h: &Mat, g: &[f64], delta: f64) -> TrSolution {
    let mut ws = TrWorkspace::new(g.len());
    let info = solve_tr_subproblem_with(h, g, delta, &mut ws);
    TrSolution {
        step: ws.step,
        predicted_reduction: info.predicted_reduction,
        on_boundary: info.on_boundary,
        lambda: info.lambda,
    }
}

/// Solve the trust-region subproblem into caller-owned storage: the
/// step lands in `ws.step()`, and (given a warmed-up workspace of the
/// right dimension) the whole solve performs no heap allocation.
///
/// This mirrors the paper's inner optimizer (§IV-D): Newton steps on a
/// nonconvex objective are safeguarded by a trust region, and each step
/// costs one eigendecomposition (here: Jacobi, [`EigenWorkspace`]) plus
/// cheap secular-equation iterations. In the eigenbasis the stationarity
/// condition `(H + λI) p = −g` becomes diagonal, so we root-find the
/// scalar secular equation `‖p(λ)‖ = Δ` with a safeguarded Newton
/// iteration, handling the hard case (gradient orthogonal to the bottom
/// eigenspace) explicitly.
pub fn solve_tr_subproblem_with(h: &Mat, g: &[f64], delta: f64, ws: &mut TrWorkspace) -> TrInfo {
    assert!(delta > 0.0, "trust radius must be positive");
    assert_eq!(h.rows(), g.len(), "gradient/Hessian dimension mismatch");
    let n = g.len();
    ws.resize(n);
    let TrWorkspace { eig, gbar, p, step } = ws;
    eig.compute(h);
    eig.to_eigenbasis_into(g, gbar);
    let lam = eig.values();
    let lam_min = lam[0];

    // Unconstrained Newton step is valid if H ≻ 0 and the step fits.
    if lam_min > 0.0 {
        for ((pi, &gi), &li) in p.iter_mut().zip(gbar.iter()).zip(lam) {
            *pi = -gi / li;
        }
        let norm = crate::vecops::norm2(p);
        if norm <= delta {
            eig.from_eigenbasis_into(p, step);
            let pred = predicted_reduction(h, g, step);
            return TrInfo {
                predicted_reduction: pred,
                on_boundary: false,
                lambda: 0.0,
            };
        }
    }

    // Boundary solution: find λ > max(0, −λ_min) with ‖p(λ)‖ = Δ where
    // p_i(λ) = −ḡ_i / (λ_i + λ).
    let lam_floor = (-lam_min).max(0.0);
    let norm_at = |l: f64| -> f64 {
        gbar.iter()
            .zip(lam)
            .map(|(&gi, &li)| {
                let d = li + l;
                (gi / d) * (gi / d)
            })
            .sum::<f64>()
            .sqrt()
    };

    // Hard case: ḡ has (numerically) no component on the bottom
    // eigenspace, so even λ → λ_floor⁺ cannot reach the boundary. Take
    // the limiting interior solution plus a bottom-eigenvector component
    // sized to land exactly on the boundary.
    let g_scale = crate::vecops::max_abs(gbar).max(1.0);
    let lam_tol = 1e-12 * lam_min.abs().max(1.0);
    // λ is sorted ascending, so index 0 always belongs to the bottom
    // eigenspace; `bottom_flat` checks the whole cluster.
    let mut bottom_flat = true;
    for i in 0..n {
        if (lam[i] - lam_min).abs() <= lam_tol && gbar[i].abs() > 1e-12 * g_scale {
            bottom_flat = false;
        }
    }
    let hard_case = lam_min <= 0.0
        && bottom_flat
        && norm_at(lam_floor + 1e-12 * lam_floor.abs().max(1.0)) < delta;
    if hard_case {
        let l = lam_floor;
        for (i, pi) in p.iter_mut().enumerate() {
            let d = lam[i] + l;
            *pi = if d.abs() <= 1e-12 { 0.0 } else { -gbar[i] / d };
        }
        let pnorm = crate::vecops::norm2(p);
        let tau = (delta * delta - pnorm * pnorm).max(0.0).sqrt();
        p[0] += tau;
        eig.from_eigenbasis_into(p, step);
        let pred = predicted_reduction(h, g, step);
        return TrInfo {
            predicted_reduction: pred,
            on_boundary: true,
            lambda: l,
        };
    }

    // Safeguarded Newton on φ(λ) = 1/‖p(λ)‖ − 1/Δ (convex in λ, the
    // standard Moré–Sorensen reformulation with superlinear convergence).
    let mut lo = lam_floor;
    let mut hi = lam_floor.max(1.0);
    while norm_at(hi) > delta {
        hi = 2.0 * hi + 1.0;
        if hi > 1e18 {
            break;
        }
    }
    let mut l = 0.5 * (lo.max(lam_floor + 1e-12) + hi);
    for _ in 0..100 {
        let nrm = norm_at(l);
        let phi = 1.0 / nrm - 1.0 / delta;
        if phi.abs() < 1e-12 / delta {
            break;
        }
        if nrm > delta {
            lo = lo.max(l);
        } else {
            hi = hi.min(l);
        }
        // φ'(λ) = (Σ ḡ²/(λ_i+λ)³) / ‖p‖³
        let dsum: f64 = gbar
            .iter()
            .zip(lam)
            .map(|(&gi, &li)| {
                let d = li + l;
                gi * gi / (d * d * d)
            })
            .sum();
        let dphi = dsum / (nrm * nrm * nrm);
        let mut l_new = l - phi / dphi;
        if !(l_new > lo && l_new < hi && l_new.is_finite()) {
            l_new = 0.5 * (lo + hi); // bisection fallback keeps the bracket
        }
        if (l_new - l).abs() <= 1e-15 * l.abs().max(1.0) {
            l = l_new;
            break;
        }
        l = l_new;
    }

    for (i, pi) in p.iter_mut().enumerate() {
        let d = lam[i] + l;
        *pi = if d.abs() <= 1e-300 { 0.0 } else { -gbar[i] / d };
    }
    eig.from_eigenbasis_into(p, step);
    let pred = predicted_reduction(h, g, step);
    TrInfo {
        predicted_reduction: pred,
        on_boundary: true,
        lambda: l,
    }
}

fn predicted_reduction(h: &Mat, g: &[f64], p: &[f64]) -> f64 {
    -(crate::vecops::dot(g, p) + 0.5 * h.quad_form(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::norm2;

    #[test]
    fn interior_step_is_newton_step() {
        let h = Mat::from_diag(&[2.0, 4.0]);
        let g = [0.2, -0.4];
        let sol = solve_tr_subproblem(&h, &g, 10.0);
        assert!(!sol.on_boundary);
        assert!((sol.step[0] - -0.1).abs() < 1e-12);
        assert!((sol.step[1] - 0.1).abs() < 1e-12);
        assert_eq!(sol.lambda, 0.0);
    }

    #[test]
    fn boundary_step_has_radius_delta() {
        let h = Mat::from_diag(&[2.0, 4.0]);
        let g = [10.0, -10.0];
        let delta = 0.5;
        let sol = solve_tr_subproblem(&h, &g, delta);
        assert!(sol.on_boundary);
        assert!((norm2(&sol.step) - delta).abs() < 1e-8);
        // KKT: (H + λI) p = −g with λ ≥ 0.
        let mut hp = h.matvec(&sol.step);
        for (hpi, pi) in hp.iter_mut().zip(&sol.step) {
            *hpi += sol.lambda * pi;
        }
        for (hpi, gi) in hp.iter().zip(&g) {
            assert!((hpi + gi).abs() < 1e-6, "KKT residual too large");
        }
        assert!(sol.lambda >= 0.0);
    }

    #[test]
    fn indefinite_hessian_still_descends() {
        // Saddle: H has a negative eigenvalue; TR step must still reduce
        // the quadratic model.
        let h = Mat::from_rows(2, 2, &[1.0, 0.0, 0.0, -2.0]);
        let g = [0.5, 0.3];
        let sol = solve_tr_subproblem(&h, &g, 1.0);
        assert!(sol.on_boundary);
        assert!(sol.predicted_reduction > 0.0);
        assert!((norm2(&sol.step) - 1.0).abs() < 1e-8);
        assert!(sol.lambda >= 2.0 - 1e-8, "λ must dominate −λ_min");
    }

    #[test]
    fn hard_case_reaches_boundary() {
        // Gradient orthogonal to the negative-curvature direction.
        let h = Mat::from_diag(&[-1.0, 3.0]);
        let g = [0.0, 0.3];
        let sol = solve_tr_subproblem(&h, &g, 2.0);
        assert!(sol.on_boundary);
        assert!((norm2(&sol.step) - 2.0).abs() < 1e-8);
        assert!(sol.predicted_reduction > 0.0);
    }

    #[test]
    fn zero_gradient_negative_curvature_moves() {
        // At an exact saddle with g = 0, the optimizer must still escape
        // along negative curvature (hard case with pure eigen-step).
        let h = Mat::from_diag(&[-2.0, 1.0]);
        let g = [0.0, 0.0];
        let sol = solve_tr_subproblem(&h, &g, 1.0);
        assert!((norm2(&sol.step) - 1.0).abs() < 1e-8);
        assert!(sol.predicted_reduction > 0.0);
        // Moves along the first (negative) eigendirection.
        assert!(sol.step[0].abs() > 0.9);
    }

    #[test]
    fn reduction_matches_direct_evaluation() {
        let h = Mat::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 0.5, 0.0, 0.5, 5.0]);
        let g = [1.0, -2.0, 0.5];
        let sol = solve_tr_subproblem(&h, &g, 0.3);
        let direct = -(crate::vecops::dot(&g, &sol.step) + 0.5 * h.quad_form(&sol.step));
        assert!((sol.predicted_reduction - direct).abs() < 1e-12);
    }

    #[test]
    fn workspace_form_matches_owning_form_across_reuse() {
        let h = Mat::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 0.5, 0.0, 0.5, 5.0]);
        let mut ws = TrWorkspace::new(3);
        for &delta in &[0.05, 0.3, 50.0] {
            let g = [1.0, -2.0, 0.5];
            let owning = solve_tr_subproblem(&h, &g, delta);
            let info = solve_tr_subproblem_with(&h, &g, delta, &mut ws);
            assert_eq!(ws.step(), owning.step.as_slice());
            assert_eq!(info.predicted_reduction, owning.predicted_reduction);
            assert_eq!(info.on_boundary, owning.on_boundary);
            assert_eq!(info.lambda, owning.lambda);
        }
    }

    #[test]
    fn hard_case_on_near_degenerate_7x7() {
        // The trust-region hard case on a 7×7 Hessian whose bottom
        // eigenspace is a near-degenerate cluster (eigengaps at the
        // rounding floor, off-diagonals ~1e-16): the Jacobi guard must
        // converge and the solver must still land exactly on the
        // boundary with a valid KKT certificate.
        let n = 7;
        let mut h = Mat::zeros(n, n);
        for i in 0..n {
            h[(i, i)] = match i {
                0..=2 => -1.0 + 1e-15 * i as f64, // clustered bottom
                _ => 2.0 + i as f64,
            };
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let v = 1e-16 * ((i + 2 * j) % 5) as f64;
                h[(i, j)] = v;
                h[(j, i)] = v;
            }
        }
        // Gradient supported only off the bottom eigenspace.
        let g = [0.0, 0.0, 0.0, 0.4, -0.2, 0.1, 0.3];
        let delta = 2.0;
        let sol = solve_tr_subproblem(&h, &g, delta);
        assert!(sol.on_boundary, "hard case must reach the boundary");
        assert!((norm2(&sol.step) - delta).abs() < 1e-8);
        assert!(sol.predicted_reduction > 0.0);
        assert!((sol.lambda - 1.0).abs() < 1e-6, "λ = −λ_min in hard case");
        // KKT residual: (H + λI) p + g ⊥ everything (≈ 0).
        let mut r = h.matvec(&sol.step);
        for ((ri, pi), gi) in r.iter_mut().zip(&sol.step).zip(&g) {
            *ri += sol.lambda * pi + gi;
        }
        assert!(crate::vecops::max_abs(&r) < 1e-6, "KKT residual {:?}", r);
    }
}
