//! Fused-multiply-add strategy and runtime SIMD dispatch, shared by
//! every hand-vectorized kernel in the workspace.
//!
//! The hot kernels (the bivariate-normal geometry kernel in
//! `celeste-core::bvn`, the 28-slot packed likelihood accumulation in
//! `celeste-core::likelihood`) are each instantiated twice: once with
//! plain `a*b + c` for the portable baseline, and once with
//! [`f64::mul_add`] inside an `avx2,fma` target-feature function
//! (where it compiles to a single `vfmadd` instead of a libm call).
//! Blanket `-C target-cpu=native` was measured to *hurt* (AVX-512
//! downclock, and the dense reference baseline autovectorizes), so
//! SIMD stays explicit and runtime-dispatched through this module.
//!
//! **Every** kernel must route its instantiation choice through
//! [`fma_enabled`]: a single cached decision means the value-only and
//! derivative evaluation paths round identically, so screening cuts
//! (`qf ≤ qf_cut` in the bvn kernel) make bit-identical culling
//! decisions in both. Per-path `is_x86_feature_detected!` checks are
//! how the value/derivative dispatch mismatch happened.
//!
//! Setting `CELESTE_FORCE_SCALAR=1` in the environment forces the
//! portable instantiation everywhere (read once per process), so the
//! scalar fallback stays exercised on AVX2 hardware — CI runs a
//! dedicated leg with it set.

use std::sync::OnceLock;

/// Fused-multiply-add strategy for hand-vectorized kernels: computes
/// `a*b + c` either as two rounded operations (portable) or as one
/// fused contraction (hardware FMA). The FMA form is at least as
/// accurate (one rounding instead of two), so both instantiations of
/// a kernel agree with a dense reference within a 1e-12 parity bar —
/// but they are *not* bit-identical to each other, which is why the
/// dispatch decision must be process-global ([`fma_enabled`]).
pub trait Madd {
    fn madd(a: f64, b: f64, c: f64) -> f64;
}

/// Plain multiply-then-add (portable baseline).
pub struct ScalarMadd;

impl Madd for ScalarMadd {
    #[inline(always)]
    fn madd(a: f64, b: f64, c: f64) -> f64 {
        a * b + c
    }
}

/// Hardware contraction; only instantiate inside `fma`-enabled
/// target-feature functions (elsewhere `mul_add` is a libm call and
/// far slower than two plain ops).
#[cfg(target_arch = "x86_64")]
pub struct HwFma;

#[cfg(target_arch = "x86_64")]
impl Madd for HwFma {
    #[inline(always)]
    fn madd(a: f64, b: f64, c: f64) -> f64 {
        a.mul_add(b, c)
    }
}

/// The dispatch decision, given whether the scalar path is forced:
/// split out of [`fma_enabled`] so the policy is unit-testable
/// without mutating process environment.
fn decide(force_scalar: bool) -> bool {
    if force_scalar {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn force_scalar_env() -> bool {
    std::env::var("CELESTE_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Whether the `avx2,fma` kernel instantiations are dispatched in
/// this process. Cached once: CPU features cannot change, and the
/// `CELESTE_FORCE_SCALAR` override is read a single time so the
/// value-only and derivative paths can never disagree mid-run.
pub fn fma_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| decide(force_scalar_env()))
}

/// Which kernel instantiation this process dispatches — `"fma"` or
/// `"scalar"` — for benchmark records: committed numbers from
/// different machines are only comparable when the instantiation is
/// known (a scalar-path run silently looks like a regression against
/// an FMA-path baseline).
pub fn kernel_isa() -> &'static str {
    if fma_enabled() {
        "fma"
    } else {
        "scalar"
    }
}

/// `out[j] += c1·x[j] + c2·y[j]` — the packed-triangle row update
/// shared by the likelihood kernel's rank-2 chain terms and
/// flux-block triangles. Generic over the madd strategy; call inside
/// a target-feature function for the FMA instantiation.
#[inline(always)]
pub fn axpy2<F: Madd>(out: &mut [f64], c1: f64, x: &[f64], c2: f64, y: &[f64]) {
    debug_assert_eq!(out.len(), x.len());
    debug_assert_eq!(out.len(), y.len());
    for j in 0..out.len() {
        out[j] = F::madd(c1, x[j], F::madd(c2, y[j], out[j]));
    }
}

/// `out[j] += Σ_p c1[p]·x[p][j] + c2[p]·y[p][j]` — the tiled form of
/// [`axpy2`]: `P` coefficient/row pairs folded into `out` with one
/// read-modify-write of each output slot instead of `P`. This is the
/// inner update of the likelihood kernel's tiled rank-2 accumulation:
/// the FLOP count matches `P` separate [`axpy2`] calls, but the
/// destination row (a packed Hessian triangle in the hot caller)
/// streams through registers once per tile rather than once per
/// pixel, and the `P` independent madd chains per slot give the SIMD
/// instantiation real ILP. `out` may be shorter than the `N`-wide
/// source rows (triangle rows grow with the row index); the fold
/// reads only the first `out.len()` entries of each.
#[inline(always)]
pub fn axpy2_tile<F: Madd, const P: usize, const N: usize>(
    out: &mut [f64],
    c1: &[f64; P],
    x: &[[f64; N]; P],
    c2: &[f64; P],
    y: &[[f64; N]; P],
) {
    assert!(out.len() <= N);
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = *o;
        for p in 0..P {
            acc = F::madd(c1[p], x[p][j], F::madd(c2[p], y[p][j], acc));
        }
        *o = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_respects_force_scalar() {
        assert!(!decide(true));
        // Un-forced: must agree with the direct feature probe.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(
            decide(false),
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        );
        #[cfg(not(target_arch = "x86_64"))]
        assert!(!decide(false));
    }

    #[test]
    fn isa_string_matches_dispatch() {
        assert_eq!(kernel_isa(), if fma_enabled() { "fma" } else { "scalar" });
    }

    #[test]
    fn axpy2_matches_two_axpys() {
        let x = [1.0, -2.0, 3.0, 0.5];
        let y = [0.25, 4.0, -1.5, 2.0];
        let mut out = [1.0, 1.0, 1.0, 1.0];
        axpy2::<ScalarMadd>(&mut out, 2.0, &x, -3.0, &y);
        for j in 0..4 {
            let want = 1.0 + 2.0 * x[j] - 3.0 * y[j];
            assert!((out[j] - want).abs() < 1e-12, "slot {j}");
        }
    }

    #[test]
    fn axpy2_tile_matches_sequential_axpy2s() {
        // The tiled fold must equal applying the P row pairs one at a
        // time (same FLOPs, reassociated accumulation) to well within
        // the kernels' 1e-12 parity bar.
        let x = [
            [1.0, -2.0, 3.0, 0.5, 0.25],
            [0.1, 0.2, -0.3, 0.4, -0.5],
            [2.0, -1.0, 0.0, 1.5, 0.75],
        ];
        let y = [
            [0.25, 4.0, -1.5, 2.0, 1.0],
            [-1.0, 0.5, 0.25, -0.75, 2.0],
            [0.0, 1.0, -2.0, 3.0, -4.0],
        ];
        let c1 = [2.0, -0.5, 1.25];
        let c2 = [-3.0, 0.75, 0.5];
        for len in 0..=5 {
            let mut tiled = vec![1.0; len];
            axpy2_tile::<ScalarMadd, 3, 5>(&mut tiled, &c1, &x, &c2, &y);
            let mut seq = vec![1.0; len];
            for p in 0..3 {
                axpy2::<ScalarMadd>(&mut seq, c1[p], &x[p][..len], c2[p], &y[p][..len]);
            }
            for j in 0..len {
                assert!(
                    (tiled[j] - seq[j]).abs() < 1e-13 * (1.0 + seq[j].abs()),
                    "len {len} slot {j}: {} vs {}",
                    tiled[j],
                    seq[j]
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hwfma_agrees_with_scalar_within_ulps() {
        for i in 0..100 {
            let a = 0.1 + 0.37 * i as f64;
            let b = -5.0 + 0.11 * i as f64;
            let c = 1.0 / (1.0 + i as f64);
            let f = HwFma::madd(a, b, c);
            let s = ScalarMadd::madd(a, b, c);
            assert!((f - s).abs() <= 1e-13 * (1.0 + s.abs()), "{f} vs {s}");
        }
    }
}
